// Deterministic fork-join parallelism for the planner hot loops.
//
// WorkerPool statically partitions [0, n) into min(num_threads, n)
// contiguous shards and runs one worker per shard over *persistent*
// threads. The partition depends only on (n, num_threads) — never on
// scheduling — so a caller that gives every shard its own scratch state
// (estimator, adjacency copy) and writes each result into its own slot
// gets output that is bit-identical to a serial run, at any thread count.
// Persistence matters for loops that fork thousands of times with small n:
// ETA's per-frontier candidate evaluation forks once per popped queue
// entry, so paying a thread spawn per fork would drown the win.
//
// ParallelFor is the one-shot convenience wrapper (spawn, run, join) used
// by PlanningContext::RunPrecompute's Delta(e) loop; it is implemented AS
// a throwaway WorkerPool, so the two partitions (and the determinism
// contract, see docs/PRECOMPUTE.md) can never drift apart.
#ifndef CTBUS_CORE_PARALLEL_FOR_H_
#define CTBUS_CORE_PARALLEL_FOR_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ctbus::core {

/// Resolves a user-facing thread-count knob: values >= 1 pass through,
/// anything else (0 or negative) means std::thread::hardware_concurrency()
/// (minimum 1). Mirrors ServiceOptions::num_threads semantics.
inline int ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw >= 1 ? hw : 1;
}

/// Persistent fork-join pool. Construction spawns `num_threads - 1` parked
/// threads; each Run costs two condvar round-trips instead of a thread
/// spawn per shard.
///
/// Run(n, body) partitions [0, n) into S = min(num_threads, n) contiguous
/// shards: shard s covers [s*n/S, (s+1)*n/S) — every index exactly once,
/// shards within 1 of equal size. The calling thread executes shard 0 and
/// pool thread s-1 executes shard s, so shard ids are stable across Runs
/// and a caller may key long-lived per-shard scratch state (estimator
/// clones, scratch matrices) off them. Exceptions thrown by shards are
/// captured; after every shard finished, the lowest shard id's exception
/// is rethrown on the calling thread.
///
/// Run is fork-join for ONE caller at a time: it must not be invoked
/// concurrently from two threads, nor reentrantly from inside a body.
class WorkerPool {
 public:
  explicit WorkerPool(int num_threads)
      : num_threads_(num_threads < 1 ? 1 : num_threads) {
    threads_.reserve(num_threads_ - 1);
    for (int s = 1; s < num_threads_; ++s) {
      threads_.emplace_back([this, s] { WorkerLoop(s); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// See the class comment. `num_threads <= 1` or `n <= 1` degenerates to
  /// a plain inline loop with no synchronization at all.
  void Run(int n,
           const std::function<void(int shard, int begin, int end)>& body) {
    if (n <= 0) return;
    const int shards = std::min(num_threads_, n);
    if (shards == 1) {
      body(0, 0, n);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      body_ = &body;
      n_ = n;
      shards_ = shards;
      pending_ = shards - 1;
      error_shard_ = shards;
      error_ = nullptr;
      ++epoch_;
    }
    work_cv_.notify_all();
    RunShard(/*shard=*/0, n, shards, body);
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return pending_ == 0; });
      body_ = nullptr;
      error = error_;
      error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  static int ShardBegin(int s, int n, int shards) {
    return static_cast<int>(static_cast<long long>(s) * n / shards);
  }

  /// Executes shard `shard` of the current job, recording the first (by
  /// shard id) exception. Does not touch pending_ — callers account for
  /// completion themselves.
  void RunShard(int shard, int n, int shards,
                const std::function<void(int, int, int)>& body) {
    try {
      body(shard, ShardBegin(shard, n, shards),
           ShardBegin(shard + 1, n, shards));
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (shard < error_shard_) {
        error_shard_ = shard;
        error_ = std::current_exception();
      }
    }
  }

  void WorkerLoop(int slot) {
    std::uint64_t seen_epoch = 0;
    while (true) {
      int n = 0;
      int shards = 0;
      const std::function<void(int, int, int)>* body = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
        if (stop_) return;
        seen_epoch = epoch_;
        n = n_;
        shards = shards_;
        body = body_;
      }
      // Thread `slot` owns shard `slot`; with fewer shards than threads it
      // sits this Run out (and did not count toward pending_).
      if (slot >= shards) continue;
      RunShard(slot, n, shards, *body);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  const int num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;                 // guarded by mu_
  std::uint64_t epoch_ = 0;           // guarded by mu_; bumps per Run
  int n_ = 0;                         // guarded by mu_
  int shards_ = 0;                    // guarded by mu_
  int pending_ = 0;                   // guarded by mu_
  int error_shard_ = 0;               // guarded by mu_
  std::exception_ptr error_;          // guarded by mu_
  const std::function<void(int, int, int)>* body_ = nullptr;  // guarded by mu_
};

/// One-shot fork-join over a throwaway WorkerPool: identical partition,
/// shard-0-on-caller, and exception semantics (see WorkerPool). Spawns
/// min(num_threads, n) - 1 threads for the single Run, so `num_threads <=
/// 1` (or n <= 1) degenerates to a plain inline loop with no thread spawn.
inline void ParallelFor(int n, int num_threads,
                        const std::function<void(int shard, int begin,
                                                 int end)>& body) {
  if (n <= 0) return;
  WorkerPool pool(std::min(num_threads, n));
  pool.Run(n, body);
}

}  // namespace ctbus::core

#endif  // CTBUS_CORE_PARALLEL_FOR_H_
