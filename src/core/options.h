// User-facing knobs of the CT-Bus planner (Definition 6 and Section 7.1's
// experimental parameters).
#ifndef CTBUS_CORE_OPTIONS_H_
#define CTBUS_CORE_OPTIONS_H_

#include "connectivity/natural_connectivity.h"

namespace ctbus::core {

struct CtBusOptions {
  /// Maximum number of (new and existing) edges in the planned route.
  /// ctbus-lint: key-exempt(search knob, not a precompute input — sweepable per request)
  int k = 30;

  /// Weight between demand (w) and connectivity (1 - w) in Equation 3.
  /// ctbus-lint: key-exempt(objective weight only scales ranking at query time, never Delta(e))
  double w = 0.5;

  /// Straight-line distance threshold tau between neighbor stops for
  /// candidate new edges, meters (the paper fixes 0.5 km). Together with
  /// precompute_estimator and use_perturbation_precompute, tau determines
  /// the precompute output — the serving layer keys its cache AND its
  /// request batches on exactly these fields (service/precompute_cache.h),
  /// while k / w / max_turns / seed_count / planner stay sweepable for free.
  double tau = 500.0;

  /// Turn threshold Tn: candidates with tn(mu) >= Tn stop expanding.
  /// ctbus-lint: key-exempt(search-time expansion bound, precompute-invariant)
  int max_turns = 3;

  /// Seeding number sn: only the top-sn edges of the integrated ranking
  /// seed the expansion (Section 6.2, "Selective Edges for Seeding").
  /// ctbus-lint: key-exempt(seeding consumes the precompute, never shapes it)
  int seed_count = 5000;

  /// Iteration cap it_max of Algorithm 1.
  /// ctbus-lint: key-exempt(search-time iteration budget, precompute-invariant)
  int max_iterations = 100000;

  /// Estimator used for online connectivity evaluation inside ETA
  /// (the paper's s = 50, t = 10 defaults).
  /// ctbus-lint: key-exempt(online estimator runs per query inside ETA; the precompute uses precompute_estimator)
  connectivity::EstimatorOptions online_estimator;

  /// Estimator used for the Delta(e) pre-computation pass. Cheaper than the
  /// online one because it runs once per candidate edge.
  connectivity::EstimatorOptions precompute_estimator = {
      /*probes=*/8, /*lanczos_steps=*/8, /*seed=*/11};

  /// Worker threads for the Delta(e) pre-computation loop (the dominant
  /// Table 4 cost). 1 = serial; 0 or negative = hardware concurrency. The
  /// result is bit-identical at any thread count (each shard owns its
  /// estimator and scratch adjacency; see docs/PRECOMPUTE.md), so this knob
  /// is deliberately NOT part of the precompute cache key.
  /// ctbus-lint: key-exempt(bit-identical at any thread count — keying would fragment the cache)
  int precompute_threads = 1;

  /// Worker threads for ETA's online frontier evaluation — the
  /// per-neighbor Lanczos estimates on lines 7-16 of Algorithm 1, the
  /// dominant per-query cost of SearchMode::kOnline (ETA-Pre ranks
  /// neighbors by L_e and never forks). 1 = serial, exactly the classic
  /// loop; 0 or negative = hardware concurrency. Results are bit-identical
  /// at any setting: each worker slot lazily clones the online estimator
  /// (same pinned probe seed => same probes) with a private scratch
  /// adjacency (see PlanningContext::OnlineConnectivityIncrementOnSlot),
  /// and candidates are reduced in serial order (argmax, lowest index wins
  /// ties). Like precompute_threads, this knob is therefore deliberately
  /// NOT part of the serving layer's precompute cache key or batch key
  /// (service/precompute_cache.h).
  /// ctbus-lint: key-exempt(bit-identical at any thread count — keying would fragment the cache)
  int eta_threads = 1;

  /// Prune the Delta(e) precompute loop with the Lemma 3/4-style
  /// per-candidate screen (connectivity/candidate_pruning.h): candidates
  /// whose bounded increment cannot reach the prune_keep_rank-th largest
  /// estimated increment are skipped, and the bound is stored in place of
  /// the estimate (flagged in Precompute::pruned). Surviving candidates'
  /// estimates are bit-identical to an unpruned run; pruned entries hold a
  /// (larger) upper bound, so the stored table itself differs — which is
  /// why this flag and prune_keep_rank ARE part of the precompute cache
  /// key, unlike the thread knobs. Off by default: the golden-trace gate
  /// replays byte-exact planner checksums. Stochastic path only (the
  /// perturbation model is already O(m) per edge). See docs/PRECOMPUTE.md.
  bool prune_candidates = false;

  /// With prune_candidates: how many top candidates (by screen bound, and
  /// independently by demand) are always estimated, and the rank whose
  /// estimated value forms the pruning cutoff. Larger = safer + slower.
  /// Deliberately independent of k so the precompute stays sweepable
  /// across k / w / Tn / sn.
  int prune_keep_rank = 128;

  /// Use the first-order perturbation model for Delta(e) pre-computation
  /// instead of per-edge stochastic trace estimation: one top-eigenpair
  /// Lanczos run, then O(m) per candidate edge. Implements the paper's
  /// Section 8 future work; see connectivity/perturbation.h and the
  /// bench_ablation_precompute comparison.
  bool use_perturbation_precompute = false;

  /// Algorithm 1 variant toggles (Section 4.2.2 / 4.2.3, Figure 11):
  /// false => ETA-AN: enqueue the path extended with *every* neighbor
  /// instead of only the best pair.
  /// ctbus-lint: key-exempt(search variant toggle, consumes the precompute unchanged)
  bool best_neighbor_only = true;
  /// false => ETA-DT: skip the domination-table pruning.
  /// ctbus-lint: key-exempt(search variant toggle, consumes the precompute unchanged)
  bool use_domination_table = true;
  /// true => ETA-ALL: seed every candidate edge, not just the top-sn.
  /// ctbus-lint: key-exempt(search variant toggle, consumes the precompute unchanged)
  bool seed_all_edges = false;
  /// true => vk-TSP behaviour: only new edges may be used (Section 7.2.1).
  /// ctbus-lint: key-exempt(search variant toggle, consumes the precompute unchanged)
  bool new_edges_only = false;

  /// Record (iteration, best objective) every `trace_every` iterations
  /// into PlanResult::trace (0 disables); used by the convergence figures.
  /// ctbus-lint: key-exempt(observability knob, never changes the precompute or the plan)
  int trace_every = 0;
};

}  // namespace ctbus::core

#endif  // CTBUS_CORE_OPTIONS_H_
