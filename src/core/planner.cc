#include "core/planner.h"

#include <cassert>
#include <utility>

namespace ctbus::core {

CtBusPlanner::CtBusPlanner(graph::RoadNetwork road,
                           graph::TransitNetwork transit,
                           const CtBusOptions& options)
    : road_(std::move(road)),
      transit_(std::move(transit)),
      options_(options) {}

PlanningContext& CtBusPlanner::context() {
  if (context_ == nullptr) {
    context_ = std::make_unique<PlanningContext>(
        PlanningContext::Build(road_, transit_, options_));
  }
  return *context_;
}

PlanResult CtBusPlanner::PlanRoute(Planner planner) {
  switch (planner) {
    case Planner::kEta:
      return RunEta(&context(), SearchMode::kOnline);
    case Planner::kEtaPre:
      return RunEta(&context(), SearchMode::kPrecomputed);
    case Planner::kVkTsp:
      return RunVkTsp(&context());
  }
  return {};
}

int CtBusPlanner::CommitRoute(const PlanResult& result) {
  assert(result.found);
  const EdgeUniverse& universe = context().universe();
  // Realize the route in the transit network: create missing edges, then
  // register the stop sequence as a route.
  for (int e : result.path.edges()) {
    const PlannableEdge& edge = universe.edge(e);
    transit_.AddEdge(edge.u, edge.v, edge.length, edge.road_edges);
  }
  const int route_id = transit_.AddRoute(result.path.stops());
  // Covered road edges stop contributing demand (Section 6.3).
  for (int e : result.path.edges()) {
    road_.ZeroTripCounts(universe.edge(e).road_edges);
  }
  context_.reset();  // network changed; rebuild lazily
  return route_id;
}

std::vector<PlanResult> CtBusPlanner::PlanMultipleRoutes(int count,
                                                         Planner planner) {
  std::vector<PlanResult> results;
  for (int round = 0; round < count; ++round) {
    PlanResult result = PlanRoute(planner);
    if (!result.found) break;
    CommitRoute(result);
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace ctbus::core
