#include "core/domination_table.h"

#include <algorithm>

namespace ctbus::core {

std::uint64_t DominationTable::Key(int a, int b) {
  const std::uint32_t lo = static_cast<std::uint32_t>(std::min(a, b));
  const std::uint32_t hi = static_cast<std::uint32_t>(std::max(a, b));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

bool DominationTable::CheckAndUpdate(int begin_edge, int end_edge,
                                     double objective) {
  const std::uint64_t key = Key(begin_edge, end_edge);
  const auto [it, inserted] = table_.try_emplace(key, objective);
  if (inserted) return true;
  if (objective > it->second) {
    it->second = objective;
    return true;
  }
  return false;
}

}  // namespace ctbus::core
