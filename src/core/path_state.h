// Candidate-path state for the expansion search: the ordered edge/stop
// sequence, turn count (Algorithm 2's angle rule), demand, and the
// feasibility checks of Section 4.2.3 (circle-free in the transit network
// and in the road network, turn threshold).
#ifndef CTBUS_CORE_PATH_STATE_H_
#define CTBUS_CORE_PATH_STATE_H_

#include <unordered_set>
#include <vector>

#include "core/edge_universe.h"
#include "graph/transit_network.h"

namespace ctbus::core {

/// A candidate route under construction. Value-semantic: expansions copy
/// the parent path and extend one end.
class CandidatePath {
 public:
  CandidatePath() = default;

  /// Single-edge seed path.
  CandidatePath(const EdgeUniverse& universe, int edge);

  const std::vector<int>& edges() const { return edges_; }
  const std::vector<int>& stops() const { return stops_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  int begin_stop() const { return stops_.front(); }
  int end_stop() const { return stops_.back(); }
  int begin_edge() const { return edges_.front(); }
  int end_edge() const { return edges_.back(); }
  int turns() const { return turns_; }
  double demand() const { return demand_; }
  /// Number of new (non-transit) edges in the path.
  int num_new_edges() const { return num_new_edges_; }

  /// True if `edge` can extend the path at `at_stop` (one of the two ends)
  /// without violating feasibility:
  ///  * the new far stop is not already on the path (loop closure back to
  ///    the opposite end is allowed, after which the path is closed),
  ///  * no road edge is crossed twice,
  ///  * the edge itself is not already used.
  bool CanExtend(const EdgeUniverse& universe,
                 const graph::TransitNetwork& transit, int edge,
                 int at_stop) const;

  /// Extends at `at_stop` (front or back). Requires CanExtend. Updates the
  /// turn count per Algorithm 2: deviation angle > pi/4 adds a turn;
  /// > pi/2 marks the path as turn-saturated (turns set to a large value by
  /// the caller's threshold semantics — here we add a kSharpTurnPenalty).
  void Extend(const EdgeUniverse& universe,
              const graph::TransitNetwork& transit, int edge, int at_stop);

  /// True if the path returned to its starting stop (one-way loop).
  bool closed() const { return closed_; }

  /// Turn count assigned to a sharp (> pi/2) turn: effectively infinite so
  /// any threshold Tn rejects the path.
  static constexpr int kSharpTurnPenalty = 1 << 20;

 private:
  std::vector<int> edges_;
  std::vector<int> stops_;
  std::unordered_set<int> used_road_edges_;
  std::unordered_set<int> visited_stops_;
  int turns_ = 0;
  double demand_ = 0.0;
  int num_new_edges_ = 0;
  bool closed_ = false;
};

}  // namespace ctbus::core

#endif  // CTBUS_CORE_PATH_STATE_H_
