#include "core/planning_context.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <utility>

#include "connectivity/bounds.h"
#include "connectivity/candidate_pruning.h"
#include "connectivity/edge_increment.h"
#include "connectivity/perturbation.h"
#include "core/parallel_for.h"
#include "core/timing.h"
#include "linalg/lanczos.h"
#include "linalg/rng.h"

namespace ctbus::core {

namespace {

/// Delta(e) via one stochastic trace estimate per edge, for the universe
/// edges listed in `todo`, sharded over `num_threads` workers. Each shard
/// owns a fresh adjacency copy and a fresh estimator; the estimator pins
/// its probes from options.precompute_estimator.seed at construction, so
/// every shard sees the same common random numbers and each edge's result
/// is independent of sharding — bit-identical to a serial run.
void ComputeStochasticIncrements(const graph::TransitNetwork& transit,
                                 const CtBusOptions& options,
                                 const EdgeUniverse& universe,
                                 const std::vector<int>& todo,
                                 int num_threads,
                                 std::vector<double>* increments) {
  // The base estimate is shard-independent (deterministic, pinned probes):
  // compute it once instead of once per shard.
  const double base = [&] {
    const linalg::SymmetricSparseMatrix adjacency = transit.AdjacencyMatrix();
    const connectivity::ConnectivityEstimator estimator(
        transit.num_stops(), options.precompute_estimator);
    return estimator.Estimate(adjacency);
  }();
  ParallelFor(static_cast<int>(todo.size()), num_threads,
              [&](int /*shard*/, int begin, int end) {
                linalg::SymmetricSparseMatrix adjacency =
                    transit.AdjacencyMatrix();
                const connectivity::ConnectivityEstimator estimator(
                    transit.num_stops(), options.precompute_estimator);
                for (int i = begin; i < end; ++i) {
                  const PlannableEdge& edge = universe.edge(todo[i]);
                  (*increments)[todo[i]] = std::max(
                      0.0, connectivity::EdgeIncrement(
                               &adjacency, base, estimator, edge.u, edge.v));
                }
              });
}

/// Delta(e) via the first-order perturbation model: one Lanczos eigenpair
/// run on the calling thread, then the O(m)-per-edge evaluations sharded
/// over `num_threads` workers (the model is immutable, so shards share it).
void ComputePerturbationIncrements(const graph::TransitNetwork& transit,
                                   const CtBusOptions& options,
                                   const EdgeUniverse& universe,
                                   const std::vector<int>& todo,
                                   int num_threads,
                                   std::vector<double>* increments) {
  const linalg::SymmetricSparseMatrix adjacency = transit.AdjacencyMatrix();
  const connectivity::ConnectivityEstimator estimator(
      transit.num_stops(), options.precompute_estimator);
  const double base_trace = estimator.EstimateTraceExp(adjacency);
  const auto model = connectivity::PerturbationIncrementModel::Build(
      adjacency, std::max(base_trace, 1e-12), {});
  ParallelFor(static_cast<int>(todo.size()), num_threads,
              [&](int /*shard*/, int begin, int end) {
                for (int i = begin; i < end; ++i) {
                  const PlannableEdge& edge = universe.edge(todo[i]);
                  (*increments)[todo[i]] = std::max(
                      0.0, model.EdgeIncrement(edge.u, edge.v));
                }
              });
}

/// The add-estimate-restore cycle behind every online increment: stage the
/// path's new edges into `scratch`, estimate, and remove them again. The
/// staged entries always sit at the tails of their rows, so Remove's
/// swap-with-last only ever shuffles staged entries among themselves and
/// the pre-call row layout is restored exactly — which is what keeps
/// evaluations bit-identical across the shared scratch and every
/// per-worker clone (same layout -> same summation order).
double EstimateIncrementWith(
    const EdgeUniverse& universe,
    const connectivity::ConnectivityEstimator& estimator,
    linalg::SymmetricSparseMatrix* scratch, double base_lambda,
    const std::vector<int>& path_edges) {
  std::vector<std::pair<int, int>> added;
  for (int e : path_edges) {
    const PlannableEdge& edge = universe.edge(e);
    if (!edge.is_new) continue;
    if (scratch->Contains(edge.u, edge.v)) continue;
    scratch->Set(edge.u, edge.v, 1.0);
    added.emplace_back(edge.u, edge.v);
  }
  if (added.empty()) return 0.0;
  const double lambda_after = estimator.Estimate(*scratch);
  for (const auto& [u, v] : added) scratch->Remove(u, v);
  return lambda_after - base_lambda;
}

/// Universe ids of every candidate (is_new) edge, in id order.
std::vector<int> NewEdgeIds(const EdgeUniverse& universe) {
  std::vector<int> ids;
  ids.reserve(universe.num_new_edges());
  for (int e = 0; e < universe.num_edges(); ++e) {
    if (universe.edge(e).is_new) ids.push_back(e);
  }
  return ids;
}

/// Runs the configured Delta(e) pass for `todo` and accumulates the stats
/// (the pruning screen runs two passes per precompute, so the counters
/// add up rather than overwrite).
void RunIncrementPass(const graph::TransitNetwork& transit,
                      const CtBusOptions& options,
                      const EdgeUniverse& universe,
                      const std::vector<int>& todo, Precompute* pre) {
  if (todo.empty()) return;
  const int threads =
      std::max(1, std::min(ResolveThreadCount(options.precompute_threads),
                           static_cast<int>(todo.size())));
  if (options.use_perturbation_precompute) {
    ComputePerturbationIncrements(transit, options, universe, todo, threads,
                                  &pre->increments);
  } else {
    ComputeStochasticIncrements(transit, options, universe, todo, threads,
                                &pre->increments);
  }
  pre->stats.num_increments_recomputed += static_cast<int>(todo.size());
  pre->stats.threads_used = std::max(pre->stats.threads_used, threads);
}

/// True when the Lemma 3/4 candidate screen applies: the stochastic path
/// with CtBusOptions::prune_candidates set (the perturbation model is
/// already O(m) per candidate — nothing worth skipping).
bool PruningActive(const CtBusOptions& options) {
  return options.prune_candidates && !options.use_perturbation_precompute;
}

/// Screened Delta(e) pass (see docs/PRECOMPUTE.md, "Candidate pruning").
/// `todo` lists the universe ids to resolve; `filled[e]` marks is_new
/// edges whose increments[] already hold a final *estimate* (warm-start
/// carries) and may therefore anchor the cutoff. Two phases:
///   1. Estimate the top prune_keep_rank candidates by screen bound plus
///      the top prune_keep_rank by demand (the seeding signal). The
///      prune_keep_rank-th largest value among these estimates and the
///      carried ones is the cutoff c.
///   2. Estimate every remaining candidate whose bound exceeds c; the
///      rest store their bound with pruned[e] = 1 — a value <= c, so it
///      cannot displace any top-keep_rank estimate in the ranked lists.
/// Estimates are per-edge independent (fresh scratch adjacency, pinned
/// probes), so survivors are bit-identical to an unpruned run.
void PruneAndEstimateIncrements(const graph::TransitNetwork& transit,
                                const CtBusOptions& options,
                                const EdgeUniverse& universe,
                                const std::vector<int>& todo,
                                const std::vector<char>& filled,
                                Precompute* pre) {
  if (todo.empty()) return;
  const int keep = std::max(1, options.prune_keep_rank);
  const std::size_t count = todo.size();

  // The screen shares the estimator's own baseline lambda(G): bounds and
  // estimates must be measured against the same base for the cutoff
  // comparison to be meaningful.
  const linalg::SymmetricSparseMatrix adjacency = transit.AdjacencyMatrix();
  const connectivity::ConnectivityEstimator estimator(
      transit.num_stops(), options.precompute_estimator);
  const double base_lambda = estimator.Estimate(adjacency);
  const connectivity::CandidateScreen screen =
      connectivity::CandidateScreen::Build(
          adjacency, base_lambda, options.precompute_estimator.lanczos_steps,
          options.precompute_estimator.seed ^ 0xc2b2ae3d27d4eb4fULL);

  std::vector<std::pair<int, int>> endpoints;
  endpoints.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const PlannableEdge& edge = universe.edge(todo[i]);
    endpoints.emplace_back(edge.u, edge.v);
  }
  const std::vector<double> bounds = screen.EdgeBounds(endpoints);

  // Phase 1 selection: indices into `todo`, deterministic order (value
  // descending, universe id ascending on ties).
  std::vector<int> by_bound(count);
  std::vector<int> by_demand(count);
  for (std::size_t i = 0; i < count; ++i) {
    by_bound[i] = static_cast<int>(i);
    by_demand[i] = static_cast<int>(i);
  }
  std::sort(by_bound.begin(), by_bound.end(), [&](int a, int b) {
    if (bounds[a] != bounds[b]) return bounds[a] > bounds[b];
    return todo[a] < todo[b];
  });
  std::sort(by_demand.begin(), by_demand.end(), [&](int a, int b) {
    const double da = universe.edge(todo[a]).demand;
    const double db = universe.edge(todo[b]).demand;
    if (da != db) return da > db;
    return todo[a] < todo[b];
  });
  std::vector<char> in_phase1(count, 0);
  for (std::size_t r = 0; r < count && r < static_cast<std::size_t>(keep);
       ++r) {
    in_phase1[by_bound[r]] = 1;
    in_phase1[by_demand[r]] = 1;
  }
  std::vector<int> phase1;
  for (std::size_t i = 0; i < count; ++i) {
    if (in_phase1[i]) phase1.push_back(todo[i]);
  }
  RunIncrementPass(transit, options, universe, phase1, pre);

  // Cutoff: the keep-th largest known-final estimate (phase-1 results
  // plus warm-start carries). With fewer than `keep` estimates in hand,
  // nothing can be ruled out and everything is estimated.
  std::vector<double> known;
  known.reserve(phase1.size());
  for (int e : phase1) known.push_back(pre->increments[e]);
  if (!filled.empty()) {
    for (int e = 0; e < universe.num_edges(); ++e) {
      if (filled[e]) known.push_back(pre->increments[e]);
    }
  }
  double cutoff = -std::numeric_limits<double>::infinity();
  if (static_cast<int>(known.size()) >= keep) {
    std::nth_element(known.begin(), known.begin() + (keep - 1), known.end(),
                     std::greater<double>());
    cutoff = known[keep - 1];
  }

  // Phase 2: survivors vs pruned.
  std::vector<int> phase2;
  int num_pruned = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (in_phase1[i]) continue;
    if (bounds[i] > cutoff) {
      phase2.push_back(todo[i]);
    } else {
      pre->increments[todo[i]] = bounds[i];
      pre->pruned[todo[i]] = 1;
      ++num_pruned;
    }
  }
  RunIncrementPass(transit, options, universe, phase2, pre);

  pre->stats.num_increments_estimated +=
      static_cast<int>(phase1.size() + phase2.size());
  pre->stats.num_increments_pruned += num_pruned;
}

}  // namespace

Precompute PlanningContext::RunPrecompute(
    const graph::RoadNetwork& road, const graph::TransitNetwork& transit,
    const CtBusOptions& options) {
  Precompute pre;

  // Phase 1: realize the plannable-edge universe (shortest-path search per
  // candidate edge; Table 4's "Shortest path" column).
  Stopwatch stopwatch;
  EdgeUniverseOptions universe_options;
  universe_options.tau = options.tau;
  pre.universe = EdgeUniverse::Build(road, transit, universe_options);
  pre.stats.universe_seconds = stopwatch.Seconds();
  pre.stats.num_new_edges = pre.universe.num_new_edges();

  // Phase 2: Delta(e) for every new edge (Table 4's "Connectivity"
  // column) — either one stochastic trace estimate per edge, or the
  // perturbation model (one Lanczos eigenpair run, then O(m) per edge).
  // Sharded over options.precompute_threads; bit-identical to serial.
  stopwatch.Reset();
  pre.increments.assign(pre.universe.num_edges(), 0.0);
  if (PruningActive(options)) {
    pre.pruned.assign(pre.universe.num_edges(), 0);
    PruneAndEstimateIncrements(transit, options, pre.universe,
                               NewEdgeIds(pre.universe), /*filled=*/{}, &pre);
  } else {
    RunIncrementPass(transit, options, pre.universe, NewEdgeIds(pre.universe),
                     &pre);
  }
  pre.stats.increments_seconds = stopwatch.Seconds();
  return pre;
}

Precompute PlanningContext::DerivePrecompute(const graph::RoadNetwork& road,
                                             const graph::TransitNetwork& transit,
                                             const CtBusOptions& options,
                                             const Precompute& prev,
                                             const SnapshotDelta& delta) {
  Precompute pre;
  pre.stats.derived = true;
  pre.stats.derivation_depth = prev.stats.derivation_depth + 1;

  // Phase 1 replacement: carry the shortest-path realizations over. The
  // derived universe is bit-identical to EdgeUniverse::Build on the new
  // networks (commits add transit edges and zero demand; they never move
  // stops or change road topology).
  Stopwatch stopwatch;
  pre.universe = EdgeUniverse::DeriveFrom(prev.universe, road, transit);
  pre.stats.universe_seconds = stopwatch.Seconds();
  pre.stats.num_new_edges = pre.universe.num_new_edges();

  stopwatch.Reset();
  pre.increments.assign(pre.universe.num_edges(), 0.0);
  if (options.use_perturbation_precompute) {
    // The perturbation model is global (eigenpairs of the new adjacency),
    // so every candidate is re-evaluated — O(m) per edge after one Lanczos
    // run — keeping the derived result bit-identical to RunPrecompute.
    RunIncrementPass(transit, options, pre.universe, NewEdgeIds(pre.universe),
                     &pre);
  } else {
    // Stochastic path: recompute Delta(e) only for candidates with an
    // endpoint among the delta's touched stops (their increments see the
    // added edges at zeroth order); carry the rest over from the donor.
    // Recomputed values are bit-identical to from-scratch; carried values
    // differ only by the second-order interaction with the added edges.
    // With pruning on, carried entries also keep the donor's pruned flag,
    // and the touched set goes through the same screen as a from-scratch
    // run (carried estimates — not carried bounds — anchor the cutoff).
    const bool pruning = PruningActive(options);
    if (pruning) pre.pruned.assign(pre.universe.num_edges(), 0);
    std::vector<char> touched(transit.num_stops(), 0);
    for (int s : delta.touched_stops) touched[s] = 1;
    struct Carried {
      double increment = 0.0;
      char pruned = 0;
    };
    std::unordered_map<std::uint64_t, Carried> prev_increment;
    prev_increment.reserve(prev.universe.num_new_edges());
    const auto pair_key = [](int u, int v) {
      return (static_cast<std::uint64_t>(u) << 32) |
             static_cast<std::uint32_t>(v);
    };
    for (int e = 0; e < prev.universe.num_edges(); ++e) {
      const PlannableEdge& edge = prev.universe.edge(e);
      if (!edge.is_new) continue;
      prev_increment.emplace(
          pair_key(edge.u, edge.v),
          Carried{prev.increments[e],
                  static_cast<char>(prev.IsPruned(e) ? 1 : 0)});
    }
    std::vector<int> todo;
    std::vector<char> filled(pruning ? pre.universe.num_edges() : 0, 0);
    int carried = 0;
    for (int e = 0; e < pre.universe.num_edges(); ++e) {
      const PlannableEdge& edge = pre.universe.edge(e);
      if (!edge.is_new) continue;
      const auto it = touched[edge.u] || touched[edge.v]
                          ? prev_increment.end()
                          : prev_increment.find(pair_key(edge.u, edge.v));
      if (it == prev_increment.end()) {
        todo.push_back(e);  // touched, or (defensively) unknown to the donor
      } else {
        pre.increments[e] = it->second.increment;
        if (pruning) {
          pre.pruned[e] = it->second.pruned;
          filled[e] = it->second.pruned ? 0 : 1;
        }
        ++carried;
      }
    }
    if (pruning) {
      PruneAndEstimateIncrements(transit, options, pre.universe, todo, filled,
                                 &pre);
    } else {
      RunIncrementPass(transit, options, pre.universe, todo, &pre);
    }
    pre.stats.num_increments_carried = carried;
  }
  pre.stats.increments_seconds = stopwatch.Seconds();
  return pre;
}

PlanningContext PlanningContext::Build(const graph::RoadNetwork& road,
                                       const graph::TransitNetwork& transit,
                                       const CtBusOptions& options) {
  return BuildWithPrecompute(road, transit, options,
                             RunPrecompute(road, transit, options));
}

PlanningContext PlanningContext::BuildWithPrecompute(
    const graph::RoadNetwork& road, const graph::TransitNetwork& transit,
    const CtBusOptions& options, Precompute precompute) {
  return BuildWithPrecompute(
      road, transit, options,
      std::make_shared<const Precompute>(std::move(precompute)));
}

PlanningContext PlanningContext::BuildWithPrecompute(
    const graph::RoadNetwork& road, const graph::TransitNetwork& transit,
    const CtBusOptions& options,
    std::shared_ptr<const Precompute> precompute) {
  PlanningContext ctx;
  ctx.road_ = &road;
  ctx.transit_ = &transit;
  ctx.options_ = options;
  ctx.precompute_ = std::move(precompute);
  const EdgeUniverse& universe = ctx.precompute_->universe;
  const std::vector<double>& increments = ctx.precompute_->increments;

  // Shared estimator + base connectivity.
  ctx.scratch_adjacency_ = transit.AdjacencyMatrix();
  ctx.estimator_ = std::make_unique<connectivity::ConnectivityEstimator>(
      transit.num_stops(), options.online_estimator);
  ctx.base_lambda_ = ctx.estimator_->Estimate(ctx.scratch_adjacency_);

  // Ranked lists and Equation 12 normalization.
  ctx.demand_list_ = demand::RankedList(universe.DemandScores());
  ctx.increment_list_ = demand::RankedList(increments);
  ctx.d_max_ = std::max(ctx.demand_list_.TopSum(options.k), 1e-12);
  ctx.lambda_max_ = std::max(ctx.increment_list_.TopSum(options.k), 1e-12);

  // Integrated per-edge objective scores L_e (Equation 11).
  std::vector<double> objective_scores(universe.num_edges());
  for (int e = 0; e < universe.num_edges(); ++e) {
    objective_scores[e] =
        ctx.Objective(universe.edge(e).demand, increments[e]);
  }
  ctx.objective_list_ = demand::RankedList(std::move(objective_scores));

  // Top eigenvalues for the Lemma 3/4 bounds.
  const int needed = std::max(2 * options.k, 2);
  linalg::Rng eig_rng(options.online_estimator.seed ^ 0x9e3779b9ULL);
  ctx.top_eigenvalues_ = linalg::TopEigenvalues(
      ctx.scratch_adjacency_, std::min(needed, transit.num_stops()),
      std::min(transit.num_stops(), needed + 30), &eig_rng);
  return ctx;
}

double PlanningContext::Objective(double demand,
                                  double connectivity_increment) const {
  return options_.w * demand / d_max_ +
         (1.0 - options_.w) * connectivity_increment / lambda_max_;
}

double PlanningContext::OnlineConnectivityIncrement(
    const std::vector<int>& path_edges) const {
  return EstimateIncrementWith(precompute_->universe, *estimator_,
                               &scratch_adjacency_, base_lambda_, path_edges);
}

double PlanningContext::OnlineConnectivityIncrementOnSlot(
    int slot, const std::vector<int>& path_edges) const {
  assert(slot >= 0 &&
         slot < static_cast<int>(online_eval_units_.size()));
  std::unique_ptr<OnlineEvalUnit>& unit = online_eval_units_[slot];
  if (unit == nullptr) {
    // First use of this slot: clone the estimator (same options => same
    // pinned probes as the shared one) and copy the base adjacency (same
    // deterministic construction => same row layout). No re-estimate of
    // base_lambda_ is needed — the clone would reproduce it bit-for-bit.
    unit = std::make_unique<OnlineEvalUnit>();
    unit->estimator = std::make_unique<connectivity::ConnectivityEstimator>(
        transit_->num_stops(), options_.online_estimator);
    unit->scratch_adjacency = transit_->AdjacencyMatrix();
  }
  return EstimateIncrementWith(precompute_->universe, *unit->estimator,
                               &unit->scratch_adjacency, base_lambda_,
                               path_edges);
}

void PlanningContext::ReserveOnlineEvalSlots(int n) const {
  if (n > static_cast<int>(online_eval_units_.size())) {
    online_eval_units_.resize(n);
  }
}

int PlanningContext::num_online_eval_units_built() const {
  int built = 0;
  for (const auto& unit : online_eval_units_) built += unit != nullptr;
  return built;
}

std::size_t PlanningContext::ApproxBytes() const {
  std::size_t bytes = sizeof(PlanningContext) + precompute_->ApproxBytes() +
                      demand_list_.ApproxBytes() +
                      increment_list_.ApproxBytes() +
                      objective_list_.ApproxBytes() +
                      estimator_->ApproxBytes() +
                      scratch_adjacency_.ApproxBytes() +
                      top_eigenvalues_.size() * sizeof(double) +
                      online_eval_units_.size() *
                          sizeof(std::unique_ptr<OnlineEvalUnit>);
  for (const auto& unit : online_eval_units_) {
    if (unit == nullptr) continue;
    bytes += sizeof(OnlineEvalUnit) + unit->estimator->ApproxBytes() +
             unit->scratch_adjacency.ApproxBytes();
  }
  return bytes;
}

double PlanningContext::LinearConnectivityIncrement(
    const std::vector<int>& path_edges) const {
  double total = 0.0;
  for (int e : path_edges) total += precompute_->increments[e];
  return total;
}

double PlanningContext::PathConnectivityIncrementBound(int k) const {
  const double bound = connectivity::PathUpperBound(
      base_lambda_, top_eigenvalues_, k, transit_->num_stops());
  return bound - base_lambda_;
}

}  // namespace ctbus::core
