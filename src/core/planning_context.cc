#include "core/planning_context.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "connectivity/bounds.h"
#include "connectivity/edge_increment.h"
#include "connectivity/perturbation.h"
#include "core/timing.h"
#include "linalg/lanczos.h"
#include "linalg/rng.h"

namespace ctbus::core {

Precompute PlanningContext::RunPrecompute(
    const graph::RoadNetwork& road, const graph::TransitNetwork& transit,
    const CtBusOptions& options) {
  Precompute pre;

  // Phase 1: realize the plannable-edge universe (shortest-path search per
  // candidate edge; Table 4's "Shortest path" column).
  auto start = std::chrono::steady_clock::now();
  EdgeUniverseOptions universe_options;
  universe_options.tau = options.tau;
  pre.universe = EdgeUniverse::Build(road, transit, universe_options);
  pre.stats.universe_seconds = SecondsSince(start);
  pre.stats.num_new_edges = pre.universe.num_new_edges();

  // Phase 2: Delta(e) for every new edge (Table 4's "Connectivity"
  // column) — either one stochastic trace estimate per edge, or the
  // perturbation model (one Lanczos eigenpair run, then O(m) per edge).
  start = std::chrono::steady_clock::now();
  pre.increments.assign(pre.universe.num_edges(), 0.0);
  {
    linalg::SymmetricSparseMatrix adjacency = transit.AdjacencyMatrix();
    const connectivity::ConnectivityEstimator pre_estimator(
        transit.num_stops(), options.precompute_estimator);
    if (options.use_perturbation_precompute) {
      const double base_trace = pre_estimator.EstimateTraceExp(adjacency);
      const auto model = connectivity::PerturbationIncrementModel::Build(
          adjacency, std::max(base_trace, 1e-12), {});
      for (int e = 0; e < pre.universe.num_edges(); ++e) {
        const PlannableEdge& edge = pre.universe.edge(e);
        if (!edge.is_new) continue;
        pre.increments[e] =
            std::max(0.0, model.EdgeIncrement(edge.u, edge.v));
      }
    } else {
      const double pre_base = pre_estimator.Estimate(adjacency);
      for (int e = 0; e < pre.universe.num_edges(); ++e) {
        const PlannableEdge& edge = pre.universe.edge(e);
        if (!edge.is_new) continue;  // existing edges add no connectivity
        pre.increments[e] = std::max(
            0.0, connectivity::EdgeIncrement(&adjacency, pre_base,
                                             pre_estimator, edge.u, edge.v));
      }
    }
  }
  pre.stats.increments_seconds = SecondsSince(start);
  return pre;
}

PlanningContext PlanningContext::Build(const graph::RoadNetwork& road,
                                       const graph::TransitNetwork& transit,
                                       const CtBusOptions& options) {
  return BuildWithPrecompute(road, transit, options,
                             RunPrecompute(road, transit, options));
}

PlanningContext PlanningContext::BuildWithPrecompute(
    const graph::RoadNetwork& road, const graph::TransitNetwork& transit,
    const CtBusOptions& options, Precompute precompute) {
  return BuildWithPrecompute(
      road, transit, options,
      std::make_shared<const Precompute>(std::move(precompute)));
}

PlanningContext PlanningContext::BuildWithPrecompute(
    const graph::RoadNetwork& road, const graph::TransitNetwork& transit,
    const CtBusOptions& options,
    std::shared_ptr<const Precompute> precompute) {
  PlanningContext ctx;
  ctx.road_ = &road;
  ctx.transit_ = &transit;
  ctx.options_ = options;
  ctx.precompute_ = std::move(precompute);
  const EdgeUniverse& universe = ctx.precompute_->universe;
  const std::vector<double>& increments = ctx.precompute_->increments;

  // Shared estimator + base connectivity.
  ctx.scratch_adjacency_ = transit.AdjacencyMatrix();
  ctx.estimator_ = std::make_unique<connectivity::ConnectivityEstimator>(
      transit.num_stops(), options.online_estimator);
  ctx.base_lambda_ = ctx.estimator_->Estimate(ctx.scratch_adjacency_);

  // Ranked lists and Equation 12 normalization.
  ctx.demand_list_ = demand::RankedList(universe.DemandScores());
  ctx.increment_list_ = demand::RankedList(increments);
  ctx.d_max_ = std::max(ctx.demand_list_.TopSum(options.k), 1e-12);
  ctx.lambda_max_ = std::max(ctx.increment_list_.TopSum(options.k), 1e-12);

  // Integrated per-edge objective scores L_e (Equation 11).
  std::vector<double> objective_scores(universe.num_edges());
  for (int e = 0; e < universe.num_edges(); ++e) {
    objective_scores[e] =
        ctx.Objective(universe.edge(e).demand, increments[e]);
  }
  ctx.objective_list_ = demand::RankedList(std::move(objective_scores));

  // Top eigenvalues for the Lemma 3/4 bounds.
  const int needed = std::max(2 * options.k, 2);
  linalg::Rng eig_rng(options.online_estimator.seed ^ 0x9e3779b9ULL);
  ctx.top_eigenvalues_ = linalg::TopEigenvalues(
      ctx.scratch_adjacency_, std::min(needed, transit.num_stops()),
      std::min(transit.num_stops(), needed + 30), &eig_rng);
  return ctx;
}

double PlanningContext::Objective(double demand,
                                  double connectivity_increment) const {
  return options_.w * demand / d_max_ +
         (1.0 - options_.w) * connectivity_increment / lambda_max_;
}

double PlanningContext::OnlineConnectivityIncrement(
    const std::vector<int>& path_edges) const {
  // Add the path's new edges, estimate, restore.
  std::vector<std::pair<int, int>> added;
  for (int e : path_edges) {
    const PlannableEdge& edge = precompute_->universe.edge(e);
    if (!edge.is_new) continue;
    if (scratch_adjacency_.Contains(edge.u, edge.v)) continue;
    scratch_adjacency_.Set(edge.u, edge.v, 1.0);
    added.emplace_back(edge.u, edge.v);
  }
  if (added.empty()) return 0.0;
  const double lambda_after = estimator_->Estimate(scratch_adjacency_);
  for (const auto& [u, v] : added) scratch_adjacency_.Remove(u, v);
  return lambda_after - base_lambda_;
}

double PlanningContext::LinearConnectivityIncrement(
    const std::vector<int>& path_edges) const {
  double total = 0.0;
  for (int e : path_edges) total += precompute_->increments[e];
  return total;
}

double PlanningContext::PathConnectivityIncrementBound(int k) const {
  const double bound = connectivity::PathUpperBound(
      base_lambda_, top_eigenvalues_, k, transit_->num_stops());
  return bound - base_lambda_;
}

}  // namespace ctbus::core
