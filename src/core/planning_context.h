// Everything the planners need, assembled once per (dataset, options):
// the plannable-edge universe, the Delta(e) pre-computation, the three
// ranked lists (L_d, L_lambda, L_e), the shared connectivity estimator with
// its base-network estimate, the top eigenvalues feeding the Lemma 3/4
// bounds, and the Equation 12 normalization constants.
#ifndef CTBUS_CORE_PLANNING_CONTEXT_H_
#define CTBUS_CORE_PLANNING_CONTEXT_H_

#include <memory>
#include <vector>

#include "connectivity/natural_connectivity.h"
#include "core/edge_universe.h"
#include "core/options.h"
#include "demand/ranked_list.h"
#include "graph/road_network.h"
#include "graph/transit_network.h"
#include "linalg/sparse_matrix.h"

namespace ctbus::core {

/// Wall-clock cost of the pre-computation phases (Table 4), plus the
/// provenance of a warm-started run.
struct PrecomputeStats {
  double universe_seconds = 0.0;     // shortest-path realization
  double increments_seconds = 0.0;   // Delta(e) estimation
  int num_new_edges = 0;
  /// True if this precompute was derived from a previous snapshot version
  /// (DerivePrecompute) instead of computed from scratch.
  bool derived = false;
  /// Derivation chain length: 0 for a from-scratch precompute, donor's
  /// depth + 1 for a derived one. On the stochastic path each hop can add
  /// carry error, so the serving layer bounds this
  /// (ServiceOptions::max_warm_start_depth) and prefers depth-0 donors.
  int derivation_depth = 0;
  /// Delta(e) evaluations actually executed in this run. From scratch this
  /// equals num_new_edges; a warm start only evaluates the candidates
  /// touched by the snapshot delta (stochastic path) or re-applies the
  /// rebuilt O(m)-per-edge perturbation model (perturbation path).
  int num_increments_recomputed = 0;
  /// Delta(e) values carried over verbatim from the donor precompute.
  int num_increments_carried = 0;
  /// With CtBusOptions::prune_candidates: candidates actually estimated
  /// (survivors of the screen, plus the always-estimated keep sets) vs
  /// candidates whose stored value is the screen's upper bound instead.
  /// Both 0 when pruning is off.
  int num_increments_estimated = 0;
  int num_increments_pruned = 0;
  /// Shards actually used for the Delta(e) loop (after clamping
  /// CtBusOptions::precompute_threads to the amount of work).
  int threads_used = 1;
};

/// Edge-level difference between two snapshot versions of one city, as
/// recorded by service::SnapshotStore::CommitRoute and consumed by
/// PlanningContext::DerivePrecompute. A commit only ever *adds* transit
/// edges and zeroes road demand, so the delta is purely additive.
struct SnapshotDelta {
  /// Stop pairs whose transit edge became active between the versions
  /// (pairs that were already active-connected before are not listed).
  std::vector<std::pair<int, int>> added_stop_pairs;
  /// Sorted, deduplicated endpoints of added_stop_pairs. Candidates with
  /// neither endpoint in this set keep their Delta(e) on a warm start.
  std::vector<int> touched_stops;
  /// Sorted, deduplicated road edges whose trip counts were zeroed
  /// (demand changes propagate to every universe edge crossing them).
  std::vector<int> changed_road_edges;
};

/// The expensive, parameter-sweep-invariant part of context construction:
/// the plannable-edge universe (depends on tau) and the Delta(e)
/// pre-computation (depends on the precompute estimator). Reusable across
/// contexts with different k / w / Tn / sn. Immutable once built; the
/// serving layer shares it across threads via shared_ptr<const Precompute>
/// without further synchronization.
struct Precompute {
  EdgeUniverse universe;
  std::vector<double> increments;
  /// Per universe edge, 1 if increments[e] holds the candidate screen's
  /// upper bound instead of an estimate (CtBusOptions::prune_candidates).
  /// Empty when pruning was off — every stored value is then an estimate
  /// (or 0 for existing edges).
  std::vector<char> pruned;
  PrecomputeStats stats;

  /// True if increments[e] is a pruning bound rather than an estimate.
  bool IsPruned(int e) const {
    return !pruned.empty() && pruned[static_cast<std::size_t>(e)] != 0;
  }

  /// Approximate resident footprint in bytes (universe + Delta(e) table).
  /// This is the unit the serving layer's byte-budgeted PrecomputeCache
  /// charges per entry. Deterministic; O(universe edges).
  std::size_t ApproxBytes() const {
    return sizeof(Precompute) - sizeof(EdgeUniverse) +
           universe.ApproxBytes() + increments.size() * sizeof(double) +
           pruned.size() * sizeof(char);
  }
};

class PlanningContext {
 public:
  /// Runs only the expensive pre-computation phases. The Delta(e) loop is
  /// sharded over options.precompute_threads workers (1 = serial, <= 0 =
  /// hardware concurrency); each shard owns its estimator and scratch
  /// adjacency, so the result is bit-identical at any thread count for
  /// both estimator paths. Thread-safe for concurrent callers (shares
  /// nothing but its const inputs).
  static Precompute RunPrecompute(const graph::RoadNetwork& road,
                                  const graph::TransitNetwork& transit,
                                  const CtBusOptions& options);

  /// Warm start: derives the precompute for the networks (road, transit)
  /// from `prev`, the precompute of an *ancestor* snapshot version, given
  /// the composed `delta` between the two versions. Requirements: same
  /// city (stop set unchanged), same options (tau, detour, precompute
  /// estimator), and the newer snapshot reachable from the older one by
  /// CommitRoute steps only.
  ///
  /// The carried-over work: the universe's shortest-path realizations are
  /// reused wholesale (bit-identical to EdgeUniverse::Build on the new
  /// networks), and on the stochastic path the Delta(e) of candidates not
  /// touching delta.touched_stops is carried from `prev` (exact for
  /// recomputed candidates, first-order-accurate for carried ones). On the
  /// perturbation path every candidate is re-evaluated against a model
  /// rebuilt on the new adjacency — O(m) per edge — so the result is
  /// bit-identical to RunPrecompute. See docs/PRECOMPUTE.md.
  static Precompute DerivePrecompute(const graph::RoadNetwork& road,
                                     const graph::TransitNetwork& transit,
                                     const CtBusOptions& options,
                                     const Precompute& prev,
                                     const SnapshotDelta& delta);

  /// Builds the full context (runs RunPrecompute internally).
  /// `road` and `transit` must outlive it.
  static PlanningContext Build(const graph::RoadNetwork& road,
                               const graph::TransitNetwork& transit,
                               const CtBusOptions& options);

  /// Builds a context around an existing pre-computation (moved in).
  /// The precompute must have been produced for the same (road, transit,
  /// tau); only k / w / Tn / sn / estimator seeds may differ.
  static PlanningContext BuildWithPrecompute(
      const graph::RoadNetwork& road, const graph::TransitNetwork& transit,
      const CtBusOptions& options, Precompute precompute);

  /// Shares an existing pre-computation without copying it — the context
  /// keeps the shared_ptr alive and reads the universe / increments in
  /// place. This is the hot path of the serving layer's cache hits: the
  /// Precompute is immutable, so any number of contexts (on any threads)
  /// may share one instance; each context only adds mutable state of its
  /// own (scratch adjacency, estimator), which is what makes a *context*
  /// single-threaded while the *precompute* is freely shared.
  static PlanningContext BuildWithPrecompute(
      const graph::RoadNetwork& road, const graph::TransitNetwork& transit,
      const CtBusOptions& options,
      std::shared_ptr<const Precompute> precompute);

  const graph::RoadNetwork& road() const { return *road_; }
  const graph::TransitNetwork& transit() const { return *transit_; }
  const CtBusOptions& options() const { return options_; }
  const EdgeUniverse& universe() const { return precompute_->universe; }

  /// L_d, L_lambda, L_e over universe edge ids.
  const demand::RankedList& demand_list() const { return demand_list_; }
  const demand::RankedList& increment_list() const { return increment_list_; }
  const demand::RankedList& objective_list() const { return objective_list_; }

  /// Delta(e) per universe edge (0 for existing edges).
  const std::vector<double>& increments() const {
    return precompute_->increments;
  }

  /// Normalization constants of Equation 12.
  double d_max() const { return d_max_; }
  double lambda_max() const { return lambda_max_; }

  /// lambda(G_r) as seen by the shared estimator.
  double base_lambda() const { return base_lambda_; }

  /// The shared (common-random-numbers) estimator.
  const connectivity::ConnectivityEstimator& estimator() const {
    return *estimator_;
  }

  /// Top eigenvalues of the base adjacency (descending), enough for the
  /// Lemma 3/4 bounds at the configured k.
  const std::vector<double>& top_eigenvalues() const {
    return top_eigenvalues_;
  }

  const PrecomputeStats& precompute_stats() const {
    return precompute_->stats;
  }

  /// Approximate resident footprint in bytes of this context's own state
  /// plus the (possibly shared) precompute it holds alive: ranked lists,
  /// estimator probes, scratch adjacency, eigenvalues, and the precompute
  /// tables. Contexts sharing one precompute each report its bytes — the
  /// serving layer accounts the shared copy once, via the cache.
  std::size_t ApproxBytes() const;

  /// Copies out this context's pre-computation for reuse in sibling
  /// contexts (different k / w / Tn / sn over the same networks). Prefer
  /// SharePrecompute when a copy is not required.
  Precompute ExportPrecompute() const { return *precompute_; }

  /// Shares this context's pre-computation without copying.
  std::shared_ptr<const Precompute> SharePrecompute() const {
    return precompute_;
  }

  /// Normalized objective (Equation 3) from raw demand and connectivity
  /// increment.
  double Objective(double demand, double connectivity_increment) const;

  /// Online connectivity increment of a path's *new* edges, evaluated with
  /// the shared estimator against the base network (the Lanczos call on
  /// lines 10/13 of Algorithm 1). Const but NOT thread-safe per context:
  /// it mutates and restores the internal scratch matrix, so concurrent
  /// planners must each own a context (see service/planning_service.h).
  double OnlineConnectivityIncrement(const std::vector<int>& path_edges) const;

  /// OnlineConnectivityIncrement evaluated on worker slot `slot`'s private
  /// evaluation unit — an estimator clone pinned to the same probe seed
  /// plus a private scratch adjacency — constructed lazily on the slot's
  /// first use. Bit-identical to OnlineConnectivityIncrement: the clone
  /// draws the same probes, and Set/Remove cycles restore the adjacency's
  /// row layout exactly, so every evaluation sees the base layout plus its
  /// own path edges regardless of which unit runs it. Distinct slots may
  /// run concurrently (ETA's frontier workers key slots off stable
  /// WorkerPool shard ids); a single slot must never be shared by two
  /// threads at once. Requires ReserveOnlineEvalSlots(slot + 1) first.
  double OnlineConnectivityIncrementOnSlot(
      int slot, const std::vector<int>& path_edges) const;

  /// Ensures evaluation slots [0, n) exist (units stay empty until first
  /// use, so unused slots cost one null pointer). NOT thread-safe — call
  /// from the search thread before forking workers. The units are
  /// per-context scratch state like scratch_adjacency_: they never enter
  /// the shared Precompute, which is why CtBusOptions::eta_threads stays
  /// out of the precompute cache key (service/precompute_cache.h).
  void ReserveOnlineEvalSlots(int n) const;

  /// Slots currently reserved, and how many were actually materialized by
  /// a first use. For tests and introspection.
  int num_online_eval_slots() const {
    return static_cast<int>(online_eval_units_.size());
  }
  int num_online_eval_units_built() const;

  /// Linearized connectivity increment: sum of Delta(e) over the path's
  /// edges (ETA-Pre's surrogate).
  double LinearConnectivityIncrement(const std::vector<int>& path_edges) const;

  /// Upper bound on the connectivity increment of any path completed to at
  /// most k edges (Lemma 4, normalized to an increment).
  double PathConnectivityIncrementBound(int k) const;

 private:
  PlanningContext() = default;

  /// One worker slot's private online-evaluation state; see
  /// OnlineConnectivityIncrementOnSlot.
  struct OnlineEvalUnit {
    std::unique_ptr<connectivity::ConnectivityEstimator> estimator;
    linalg::SymmetricSparseMatrix scratch_adjacency;
  };

  const graph::RoadNetwork* road_ = nullptr;
  const graph::TransitNetwork* transit_ = nullptr;
  CtBusOptions options_;
  std::shared_ptr<const Precompute> precompute_;
  demand::RankedList demand_list_;
  demand::RankedList increment_list_;
  demand::RankedList objective_list_;
  std::unique_ptr<connectivity::ConnectivityEstimator> estimator_;
  mutable linalg::SymmetricSparseMatrix scratch_adjacency_;
  /// Lazily-built per-worker evaluation units (indexed by worker slot).
  /// The vector itself is only resized by ReserveOnlineEvalSlots; each
  /// element is owned by exactly one worker slot, so concurrent slots
  /// never race.
  mutable std::vector<std::unique_ptr<OnlineEvalUnit>> online_eval_units_;
  double base_lambda_ = 0.0;
  std::vector<double> top_eigenvalues_;
  double d_max_ = 1.0;
  double lambda_max_ = 1.0;
};

}  // namespace ctbus::core

#endif  // CTBUS_CORE_PLANNING_CONTEXT_H_
