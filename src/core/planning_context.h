// Everything the planners need, assembled once per (dataset, options):
// the plannable-edge universe, the Delta(e) pre-computation, the three
// ranked lists (L_d, L_lambda, L_e), the shared connectivity estimator with
// its base-network estimate, the top eigenvalues feeding the Lemma 3/4
// bounds, and the Equation 12 normalization constants.
#ifndef CTBUS_CORE_PLANNING_CONTEXT_H_
#define CTBUS_CORE_PLANNING_CONTEXT_H_

#include <memory>
#include <vector>

#include "connectivity/natural_connectivity.h"
#include "core/edge_universe.h"
#include "core/options.h"
#include "demand/ranked_list.h"
#include "graph/road_network.h"
#include "graph/transit_network.h"
#include "linalg/sparse_matrix.h"

namespace ctbus::core {

/// Wall-clock cost of the pre-computation phases (Table 4).
struct PrecomputeStats {
  double universe_seconds = 0.0;     // shortest-path realization
  double increments_seconds = 0.0;   // Delta(e) estimation
  int num_new_edges = 0;
};

/// The expensive, parameter-sweep-invariant part of context construction:
/// the plannable-edge universe (depends on tau) and the Delta(e)
/// pre-computation (depends on the precompute estimator). Reusable across
/// contexts with different k / w / Tn / sn.
struct Precompute {
  EdgeUniverse universe;
  std::vector<double> increments;
  PrecomputeStats stats;
};

class PlanningContext {
 public:
  /// Runs only the expensive pre-computation phases.
  static Precompute RunPrecompute(const graph::RoadNetwork& road,
                                  const graph::TransitNetwork& transit,
                                  const CtBusOptions& options);

  /// Builds the full context (runs RunPrecompute internally).
  /// `road` and `transit` must outlive it.
  static PlanningContext Build(const graph::RoadNetwork& road,
                               const graph::TransitNetwork& transit,
                               const CtBusOptions& options);

  /// Builds a context around an existing pre-computation (moved in).
  /// The precompute must have been produced for the same (road, transit,
  /// tau); only k / w / Tn / sn / estimator seeds may differ.
  static PlanningContext BuildWithPrecompute(
      const graph::RoadNetwork& road, const graph::TransitNetwork& transit,
      const CtBusOptions& options, Precompute precompute);

  /// Shares an existing pre-computation without copying it — the context
  /// keeps the shared_ptr alive and reads the universe / increments in
  /// place. This is the hot path of the serving layer's cache hits.
  static PlanningContext BuildWithPrecompute(
      const graph::RoadNetwork& road, const graph::TransitNetwork& transit,
      const CtBusOptions& options,
      std::shared_ptr<const Precompute> precompute);

  const graph::RoadNetwork& road() const { return *road_; }
  const graph::TransitNetwork& transit() const { return *transit_; }
  const CtBusOptions& options() const { return options_; }
  const EdgeUniverse& universe() const { return precompute_->universe; }

  /// L_d, L_lambda, L_e over universe edge ids.
  const demand::RankedList& demand_list() const { return demand_list_; }
  const demand::RankedList& increment_list() const { return increment_list_; }
  const demand::RankedList& objective_list() const { return objective_list_; }

  /// Delta(e) per universe edge (0 for existing edges).
  const std::vector<double>& increments() const {
    return precompute_->increments;
  }

  /// Normalization constants of Equation 12.
  double d_max() const { return d_max_; }
  double lambda_max() const { return lambda_max_; }

  /// lambda(G_r) as seen by the shared estimator.
  double base_lambda() const { return base_lambda_; }

  /// The shared (common-random-numbers) estimator.
  const connectivity::ConnectivityEstimator& estimator() const {
    return *estimator_;
  }

  /// Top eigenvalues of the base adjacency (descending), enough for the
  /// Lemma 3/4 bounds at the configured k.
  const std::vector<double>& top_eigenvalues() const {
    return top_eigenvalues_;
  }

  const PrecomputeStats& precompute_stats() const {
    return precompute_->stats;
  }

  /// Copies out this context's pre-computation for reuse in sibling
  /// contexts (different k / w / Tn / sn over the same networks). Prefer
  /// SharePrecompute when a copy is not required.
  Precompute ExportPrecompute() const { return *precompute_; }

  /// Shares this context's pre-computation without copying.
  std::shared_ptr<const Precompute> SharePrecompute() const {
    return precompute_;
  }

  /// Normalized objective (Equation 3) from raw demand and connectivity
  /// increment.
  double Objective(double demand, double connectivity_increment) const;

  /// Online connectivity increment of a path's *new* edges, evaluated with
  /// the shared estimator against the base network (the Lanczos call on
  /// lines 10/13 of Algorithm 1). Const but NOT thread-safe per context:
  /// it mutates and restores the internal scratch matrix, so concurrent
  /// planners must each own a context (see service/planning_service.h).
  double OnlineConnectivityIncrement(const std::vector<int>& path_edges) const;

  /// Linearized connectivity increment: sum of Delta(e) over the path's
  /// edges (ETA-Pre's surrogate).
  double LinearConnectivityIncrement(const std::vector<int>& path_edges) const;

  /// Upper bound on the connectivity increment of any path completed to at
  /// most k edges (Lemma 4, normalized to an increment).
  double PathConnectivityIncrementBound(int k) const;

 private:
  PlanningContext() = default;

  const graph::RoadNetwork* road_ = nullptr;
  const graph::TransitNetwork* transit_ = nullptr;
  CtBusOptions options_;
  std::shared_ptr<const Precompute> precompute_;
  demand::RankedList demand_list_;
  demand::RankedList increment_list_;
  demand::RankedList objective_list_;
  std::unique_ptr<connectivity::ConnectivityEstimator> estimator_;
  mutable linalg::SymmetricSparseMatrix scratch_adjacency_;
  double base_lambda_ = 0.0;
  std::vector<double> top_eigenvalues_;
  double d_max_ = 1.0;
  double lambda_max_ = 1.0;
};

}  // namespace ctbus::core

#endif  // CTBUS_CORE_PLANNING_CONTEXT_H_
