// The repo's one wall-clock stopwatch, shared by the precompute engine's
// phase stats, the serving layer's per-request timings, the obs span
// recorder, and every bench binary (bench_util.h re-exports it). One type
// instead of per-layer helpers so a "seconds" anywhere in the codebase
// always means the same steady_clock measurement.
#ifndef CTBUS_CORE_TIMING_H_
#define CTBUS_CORE_TIMING_H_

#include <chrono>

namespace ctbus::core {

/// Steady-clock stopwatch: starts at construction, `Seconds()` reads the
/// elapsed time without stopping it, `Reset()` restarts it.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ctbus::core

#endif  // CTBUS_CORE_TIMING_H_
