// Shared wall-clock helper for phase timing.
#ifndef CTBUS_CORE_TIMING_H_
#define CTBUS_CORE_TIMING_H_

#include <chrono>

namespace ctbus::core {

inline double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace ctbus::core

#endif  // CTBUS_CORE_TIMING_H_
