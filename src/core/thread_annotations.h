// Clang thread-safety-analysis attribute macros for the CT-Bus tree.
//
// Wraps the `thread_safety_attributes` family so annotations compile to
// nothing on GCC/MSVC and become enforceable contracts under
// `clang++ -Wthread-safety -Werror=thread-safety` (CI job
// `thread-safety`, or locally via `-DCTBUS_THREAD_SAFETY=ON`).
//
// Usage conventions in this repo:
//   - Protected members carry CTBUS_GUARDED_BY(mu_) on the declaration.
//   - Private *Locked() helpers carry CTBUS_REQUIRES(mu_) — callers must
//     already hold the mutex.
//   - Public entry points that take a lock internally carry
//     CTBUS_EXCLUDES(mu_) so re-entrant acquisition (self-deadlock) is a
//     compile error; cross-object lock order (shard->mu before
//     SnapshotStore::mu_) is encoded the same way on the acquiring side.
//   - Plain std::mutex does not carry capability attributes, so annotated
//     code uses core::Mutex / core::MutexLock / core::CondVar from
//     src/core/mutex.h instead.
#ifndef CTBUS_CORE_THREAD_ANNOTATIONS_H_
#define CTBUS_CORE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define CTBUS_THREAD_ATTRIBUTE__(x) __attribute__((x))
#else
#define CTBUS_THREAD_ATTRIBUTE__(x)  // no-op
#endif

// Marks a type as a lockable capability ("mutex" in diagnostics).
#define CTBUS_CAPABILITY(x) CTBUS_THREAD_ATTRIBUTE__(capability(x))

// Marks an RAII type whose lifetime acquires/releases a capability.
#define CTBUS_SCOPED_CAPABILITY CTBUS_THREAD_ATTRIBUTE__(scoped_lockable)

// Data member may only be read/written while holding `x`.
#define CTBUS_GUARDED_BY(x) CTBUS_THREAD_ATTRIBUTE__(guarded_by(x))

// Pointer member: the *pointee* may only be accessed while holding `x`.
#define CTBUS_PT_GUARDED_BY(x) CTBUS_THREAD_ATTRIBUTE__(pt_guarded_by(x))

// Caller must hold `...` (exclusively) before calling.
#define CTBUS_REQUIRES(...) \
  CTBUS_THREAD_ATTRIBUTE__(requires_capability(__VA_ARGS__))

// Caller must NOT hold `...`; the function acquires it internally (or a
// lock-order contract forbids holding it here).
#define CTBUS_EXCLUDES(...) CTBUS_THREAD_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

// Function acquires the capability and holds it on return.
#define CTBUS_ACQUIRE(...) \
  CTBUS_THREAD_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

// Function releases the capability held on entry.
#define CTBUS_RELEASE(...) \
  CTBUS_THREAD_ATTRIBUTE__(release_capability(__VA_ARGS__))

// Function acquires the capability iff it returns `ret`.
#define CTBUS_TRY_ACQUIRE(ret, ...) \
  CTBUS_THREAD_ATTRIBUTE__(try_acquire_capability(ret, __VA_ARGS__))

// Declares static lock-order edges (checked under -Wthread-safety-beta).
#define CTBUS_ACQUIRED_BEFORE(...) \
  CTBUS_THREAD_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define CTBUS_ACQUIRED_AFTER(...) \
  CTBUS_THREAD_ATTRIBUTE__(acquired_after(__VA_ARGS__))

// Runtime assertion that the capability is held (trusted by the analysis).
#define CTBUS_ASSERT_CAPABILITY(x) \
  CTBUS_THREAD_ATTRIBUTE__(assert_capability(x))

// Function returns a reference to the capability guarding its result.
#define CTBUS_RETURN_CAPABILITY(x) CTBUS_THREAD_ATTRIBUTE__(lock_returned(x))

// Escape hatch: disables analysis inside the function body. Every use
// must carry a comment explaining why the protocol is not expressible.
#define CTBUS_NO_THREAD_SAFETY_ANALYSIS \
  CTBUS_THREAD_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // CTBUS_CORE_THREAD_ANNOTATIONS_H_
