#include "core/eta.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <queue>
#include <utility>

#include "core/domination_table.h"
#include "core/parallel_for.h"
#include "demand/demand_bound.h"

namespace ctbus::core {

namespace {

struct QueueEntry {
  double upper_bound = 0.0;
  double objective = 0.0;
  CandidatePath path;
  demand::BoundState bound_state;

  bool operator<(const QueueEntry& other) const {
    return upper_bound < other.upper_bound;  // max-heap on O_up
  }
};

// The search engine shared by ETA and ETA-Pre; mode selects the objective
// evaluation and bound machinery.
class EtaSearch {
 public:
  EtaSearch(const PlanningContext* ctx, SearchMode mode)
      : ctx_(ctx),
        mode_(mode),
        options_(ctx->options()),
        // ETA bounds demand via L_d (Algorithm 2); ETA-Pre bounds the
        // integrated objective via L_e (Section 6.2).
        bound_(mode == SearchMode::kOnline ? &ctx->demand_list()
                                           : &ctx->objective_list(),
               options_.k) {
    // Frontier evaluation forks only in kOnline mode, where each candidate
    // costs one Lanczos estimate; ETA-Pre's ranked-list lookups would be
    // swamped by any synchronization. eta_threads <= 1 keeps today's
    // serial loop with no pool and no evaluation units at all.
    if (mode_ == SearchMode::kOnline) {
      const int threads = ResolveThreadCount(options_.eta_threads);
      if (threads > 1) {
        ctx_->ReserveOnlineEvalSlots(threads);
        pool_ = std::make_unique<WorkerPool>(threads);
      }
    }
  }

  PlanResult Run() {
    const auto start = std::chrono::steady_clock::now();
    Initialize();
    int it = 0;
    while (!queue_.empty()) {
      QueueEntry entry = queue_.top();
      queue_.pop();
      if (entry.upper_bound <= best_objective_ || it >= options_.max_iterations) {
        break;  // Line 5-6 of Algorithm 1
      }
      ++it;
      if (options_.best_neighbor_only) {
        ExpandBestNeighbor(std::move(entry));
      } else {
        ExpandAllNeighbors(std::move(entry));  // ETA-AN
      }
      if (options_.trace_every > 0 && it % options_.trace_every == 0) {
        result_.trace.emplace_back(it, best_objective_);
      }
    }
    result_.iterations = it;
    FinalizeResult();
    result_.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    return std::move(result_);
  }

 private:
  // Objective of a candidate path under the active mode.
  double Evaluate(const CandidatePath& path) {
    if (mode_ == SearchMode::kPrecomputed) {
      return ctx_->Objective(path.demand(),
                             ctx_->LinearConnectivityIncrement(path.edges()));
    }
    return ctx_->Objective(path.demand(),
                           ctx_->OnlineConnectivityIncrement(path.edges()));
  }

  // Linearized objective (used for seeds in both modes; for online mode the
  // seed increments are themselves Lanczos-estimated during pre-computation).
  double EvaluateLinear(const CandidatePath& path) const {
    return ctx_->Objective(path.demand(),
                           ctx_->LinearConnectivityIncrement(path.edges()));
  }

  // Upper bound of a path state (Algorithm 1 lines 26/31; Section 6.2 for
  // the precomputed mode where the integrated bound is used directly).
  double UpperBound(const demand::BoundState& state) const {
    if (mode_ == SearchMode::kPrecomputed) return state.bound;
    return options_.w * state.bound / ctx_->d_max() +
           (1.0 - options_.w) * lambda_increment_bound_ / ctx_->lambda_max();
  }

  bool EdgeAllowed(int edge) const {
    return !options_.new_edges_only || ctx_->universe().edge(edge).is_new;
  }

  void MaybeUpdateBest(const CandidatePath& path, double objective) {
    if (path.turns() > options_.max_turns) return;  // infeasible as a route
    if (path.num_edges() > options_.k) return;      // over the edge budget
    if (objective > best_objective_) {
      best_objective_ = objective;
      result_.found = true;
      result_.path = path;
      result_.objective = objective;
    }
  }

  // Initialization (Algorithm 1, lines 18-27): seed single-edge paths from
  // the integrated ranking (top-sn, or all edges for ETA-ALL).
  void Initialize() {
    const demand::RankedList& seeds = ctx_->objective_list();
    const int seed_limit = options_.seed_all_edges
                               ? seeds.size()
                               : std::min(options_.seed_count, seeds.size());
    for (int rank = 0; rank < seed_limit; ++rank) {
      const int edge = seeds.EdgeAtRank(rank);
      if (!EdgeAllowed(edge)) continue;
      QueueEntry entry;
      entry.path = CandidatePath(ctx_->universe(), edge);
      entry.objective = EvaluateLinear(entry.path);
      MaybeUpdateBest(entry.path, entry.objective);
      entry.bound_state = bound_.SeedState(edge);
      entry.upper_bound = UpperBound(entry.bound_state);
      if (entry.upper_bound > best_objective_) {
        queue_.push(std::move(entry));
      }
    }
  }

  // Feasible extensions of `path` at `at_stop`, restricted to allowed edges.
  std::vector<int> FeasibleExtensions(const CandidatePath& path,
                                      int at_stop) const {
    std::vector<int> result;
    for (int e : ctx_->universe().IncidentEdges(at_stop)) {
      if (!EdgeAllowed(e)) continue;
      if (path.CanExtend(ctx_->universe(), ctx_->transit(), e, at_stop)) {
        result.push_back(e);
      }
    }
    return result;
  }

  // Lines 7-16: pick the best beginning edge `be` and ending edge `ee` by
  // objective, extend both ends, evaluate, and re-enqueue.
  void ExpandBestNeighbor(QueueEntry entry) {
    // Best extension at the end (respecting the k-edge budget).
    int best_end = -1;
    if (entry.path.num_edges() < options_.k) {
      best_end = BestExtension(entry.path, entry.path.end_stop());
      if (best_end >= 0) {
        entry.path.Extend(ctx_->universe(), ctx_->transit(), best_end,
                          entry.path.end_stop());
        entry.bound_state = bound_.Append(entry.bound_state, best_end);
      }
    }
    // Best extension at the beginning (re-validated against the grown path).
    int best_begin = -1;
    if (entry.path.num_edges() < options_.k) {
      best_begin = BestExtension(entry.path, entry.path.begin_stop());
      if (best_begin >= 0) {
        entry.path.Extend(ctx_->universe(), ctx_->transit(), best_begin,
                          entry.path.begin_stop());
        entry.bound_state = bound_.Append(entry.bound_state, best_begin);
      }
    }
    if (best_end < 0 && best_begin < 0) return;  // dead end

    entry.objective = Evaluate(entry.path);  // Line 13
    MaybeUpdateBest(entry.path, entry.objective);
    FurtherExpansion(std::move(entry));
  }

  // ETA-AN: enqueue every feasible single-edge extension at both ends.
  //
  // Note the loop runs both ends for single-edge paths too. It used to
  // `break` after the end side on the claim that "both ends are
  // equivalent", which is unsound: edges are stored with a fixed
  // orientation (candidates have u < v), so a seed (m, v) only ever
  // end-extends at v — a 2-edge path whose edges share their *begin*
  // stop m (e.g. x–m–v with m the lower endpoint of both candidates) was
  // never generated from ANY seed, and since longer paths only grow from
  // these, such optima were unreachable outright. Expanding both ends
  // restores completeness at a cost: a 2-edge path reachable from both of
  // its seeds (end-extension of one, begin-extension of the other) is now
  // generated twice, with the duplicate pruned only after its evaluation.
  // Convergent rediscovery like this is pre-existing (seeds sharing their
  // upper endpoint already collided) and is exactly what the domination
  // table is for; the alternative — keeping only begin-extensions that no
  // end-extension can produce — would lose paths whose other edge is not
  // itself seeded.
  // See EtaAllNeighborsTest.ExpandsBeginSideOfSingleEdgeSeeds.
  void ExpandAllNeighbors(const QueueEntry& entry) {
    for (const int at_stop :
         {entry.path.end_stop(), entry.path.begin_stop()}) {
      const std::vector<int> extensions =
          FeasibleExtensions(entry.path, at_stop);
      std::vector<CandidatePath> children;
      std::vector<double> objectives;
      EvaluateExtensions(entry.path, at_stop, extensions, &children,
                         &objectives);
      // The pruning pass stays serial and in candidate order: objectives
      // never depend on the incumbent, so evaluating them up front (and,
      // with a pool, concurrently) leaves best_objective_'s evolution —
      // and therefore every bound/domination decision — exactly as the
      // classic one-candidate-at-a-time loop had it.
      for (std::size_t i = 0; i < extensions.size(); ++i) {
        QueueEntry child;
        child.path = std::move(children[i]);
        child.bound_state = bound_.Append(entry.bound_state, extensions[i]);
        child.objective = objectives[i];
        MaybeUpdateBest(child.path, child.objective);
        FurtherExpansion(std::move(child));
      }
    }
  }

  // Returns the feasible extension edge with the highest resulting
  // objective, or -1. Ties go to the earliest feasible candidate, matching
  // the serial scan order at any eta_threads setting.
  int BestExtension(const CandidatePath& path, int at_stop) {
    const std::vector<int> extensions = FeasibleExtensions(path, at_stop);
    if (extensions.empty()) return -1;
    if (mode_ == SearchMode::kPrecomputed) {
      // Section 6.2: rank neighbors directly by L_e.
      int best = 0;
      for (std::size_t i = 1; i < extensions.size(); ++i) {
        if (ctx_->objective_list().ValueOf(extensions[i]) >
            ctx_->objective_list().ValueOf(extensions[best])) {
          best = static_cast<int>(i);
        }
      }
      return extensions[best];
    }
    // Line 10: one Lanczos estimate per neighbor, fanned over the pool.
    std::vector<double> values;
    EvaluateExtensions(path, at_stop, extensions, /*children=*/nullptr,
                       &values);
    int best = 0;
    for (std::size_t i = 1; i < values.size(); ++i) {
      if (values[i] > values[best]) best = static_cast<int>(i);
    }
    return extensions[best];
  }

  // Objectives of `path` extended by each edge of `extensions` at
  // `at_stop`, written into `objectives` (and the extended paths into
  // `children`, when requested). With a pool (kOnline, eta_threads > 1)
  // the evaluations fan out over stable worker-slot ids; each slot's
  // evaluation unit is bit-identical to the shared serial path (see
  // PlanningContext::OnlineConnectivityIncrementOnSlot), and every result
  // lands in its own index, so the output does not depend on eta_threads.
  void EvaluateExtensions(const CandidatePath& path, int at_stop,
                          const std::vector<int>& extensions,
                          std::vector<CandidatePath>* children,
                          std::vector<double>* objectives) {
    const int n = static_cast<int>(extensions.size());
    objectives->resize(n);
    if (children != nullptr) children->resize(n);
    const auto evaluate_one = [&](int slot, int i) {
      CandidatePath extended = path;
      extended.Extend(ctx_->universe(), ctx_->transit(), extensions[i],
                      at_stop);
      (*objectives)[i] =
          slot >= 0
              ? ctx_->Objective(extended.demand(),
                                ctx_->OnlineConnectivityIncrementOnSlot(
                                    slot, extended.edges()))
              : Evaluate(extended);  // Line 10/13 on the shared scratch
      if (children != nullptr) (*children)[i] = std::move(extended);
    };
    if (pool_ != nullptr && n > 1) {
      pool_->Run(n, [&](int shard, int begin, int end) {
        for (int i = begin; i < end; ++i) evaluate_one(shard, i);
      });
    } else {
      for (int i = 0; i < n; ++i) evaluate_one(/*slot=*/-1, i);
    }
  }

  // Lines 28-34: feasibility gate, bound refresh, domination check, enqueue.
  void FurtherExpansion(QueueEntry entry) {
    if (entry.path.closed()) return;  // loops cannot grow further
    if (entry.path.turns() >= options_.max_turns) return;
    if (entry.path.num_edges() >= options_.k) return;
    entry.upper_bound = UpperBound(entry.bound_state);
    if (entry.upper_bound <= best_objective_) return;
    if (options_.use_domination_table &&
        !domination_.CheckAndUpdate(entry.path.begin_edge(),
                                    entry.path.end_edge(), entry.objective)) {
      return;
    }
    queue_.push(std::move(entry));
  }

  // Re-estimate the winner's connectivity online (both modes report the
  // Lanczos-estimated increment, as the paper does for ETA-Pre's last
  // point in Figure 9).
  void FinalizeResult() {
    if (!result_.found) return;
    result_.demand = result_.path.demand();
    result_.connectivity_increment =
        ctx_->OnlineConnectivityIncrement(result_.path.edges());
    result_.objective =
        ctx_->Objective(result_.demand, result_.connectivity_increment);
  }

  const PlanningContext* ctx_;
  SearchMode mode_;
  const CtBusOptions& options_;
  /// Persistent frontier-evaluation pool; null in kPrecomputed mode and
  /// whenever eta_threads resolves to 1 (the serial fast path).
  std::unique_ptr<WorkerPool> pool_;
  demand::IncrementalDemandBound bound_;
  DominationTable domination_;
  std::priority_queue<QueueEntry> queue_;
  PlanResult result_;
  double best_objective_ = 0.0;
  const double lambda_increment_bound_ =
      ctx_->PathConnectivityIncrementBound(options_.k);
};

}  // namespace

PlanResult RunEta(const PlanningContext* context, SearchMode mode) {
  return EtaSearch(context, mode).Run();
}

}  // namespace ctbus::core
