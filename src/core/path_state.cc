#include "core/path_state.h"

#include <cassert>
#include <cmath>

#include "graph/geo.h"

namespace ctbus::core {

CandidatePath::CandidatePath(const EdgeUniverse& universe, int edge) {
  const PlannableEdge& e = universe.edge(edge);
  edges_.push_back(edge);
  stops_ = {e.u, e.v};
  visited_stops_ = {e.u, e.v};
  used_road_edges_.insert(e.road_edges.begin(), e.road_edges.end());
  demand_ = e.demand;
  num_new_edges_ = e.is_new ? 1 : 0;
}

bool CandidatePath::CanExtend(const EdgeUniverse& universe,
                              const graph::TransitNetwork& /*transit*/,
                              int edge, int at_stop) const {
  if (closed_) return false;
  assert(at_stop == begin_stop() || at_stop == end_stop());
  const PlannableEdge& e = universe.edge(edge);
  if (e.u != at_stop && e.v != at_stop) return false;
  const int far = e.u == at_stop ? e.v : e.u;
  // Circle-free in the transit network: the far stop may not be revisited,
  // except to close a loop back to the opposite end of the path.
  const int opposite = at_stop == end_stop() ? begin_stop() : end_stop();
  if ((visited_stops_.count(far) > 0) && !(far == opposite && num_edges() >= 2)) {
    return false;
  }
  // Edge reuse (also covers the 1-edge path closing onto itself).
  for (int used : edges_) {
    if (used == edge) return false;
  }
  // Circle-free in the road network: no road edge crossed twice.
  for (int re : e.road_edges) {
    if ((used_road_edges_.count(re) > 0)) return false;
  }
  return true;
}

void CandidatePath::Extend(const EdgeUniverse& universe,
                           const graph::TransitNetwork& transit, int edge,
                           int at_stop) {
  const PlannableEdge& e = universe.edge(edge);
  const int far = e.u == at_stop ? e.v : e.u;

  // Turn accounting (Algorithm 2): deviation angle at the junction stop
  // between the incumbent end edge and the new edge.
  const bool at_end = at_stop == end_stop();
  const int inner_stop = at_end ? stops_[stops_.size() - 2] : stops_[1];
  const double angle =
      graph::TurnAngle(transit.stop(inner_stop).position,
                       transit.stop(at_stop).position,
                       transit.stop(far).position);
  if (angle > M_PI / 2) {
    turns_ += kSharpTurnPenalty;
  } else if (angle > M_PI / 4) {
    turns_ += 1;
  }

  if (at_end) {
    edges_.push_back(edge);
    stops_.push_back(far);
  } else {
    edges_.insert(edges_.begin(), edge);
    stops_.insert(stops_.begin(), far);
  }
  if ((visited_stops_.count(far) > 0)) {
    closed_ = true;  // loop closure back to the opposite end
  }
  visited_stops_.insert(far);
  used_road_edges_.insert(e.road_edges.begin(), e.road_edges.end());
  demand_ += e.demand;
  if (e.is_new) ++num_new_edges_;
}

}  // namespace ctbus::core
