// Top-level facade: owns dataset copies and exposes single-route planning
// (ETA / ETA-Pre / vk-TSP) plus iterative multi-route planning
// (Section 6.3: commit a route, zero its covered demand, update the transit
// network, replan).
#ifndef CTBUS_CORE_PLANNER_H_
#define CTBUS_CORE_PLANNER_H_

#include <memory>
#include <vector>

#include "core/baselines.h"
#include "core/eta.h"
#include "core/options.h"
#include "core/planning_context.h"
#include "graph/road_network.h"
#include "graph/transit_network.h"

namespace ctbus::core {

enum class Planner {
  kEta,     // online connectivity evaluation
  kEtaPre,  // pre-computed linearized objective
  kVkTsp,   // demand-first baseline
};

class CtBusPlanner {
 public:
  /// Copies the networks so multi-route planning can mutate them freely.
  CtBusPlanner(graph::RoadNetwork road, graph::TransitNetwork transit,
               const CtBusOptions& options);

  /// The context for the *current* network state, built lazily and
  /// invalidated by CommitRoute.
  PlanningContext& context();

  /// Plans one route without modifying the network.
  PlanResult PlanRoute(Planner planner);

  /// Commits a planned route: registers it as a new bus route in the
  /// transit network (realizing its new edges) and zeroes the demand on
  /// covered road edges. Invalidate-and-rebuild semantics for the context.
  /// Returns the new route id in the internal transit network.
  int CommitRoute(const PlanResult& result);

  /// Plans `count` routes iteratively (plan, commit, replan). Stops early
  /// if no feasible route remains. Returns the per-round results.
  std::vector<PlanResult> PlanMultipleRoutes(int count, Planner planner);

  const graph::RoadNetwork& road() const { return road_; }
  const graph::TransitNetwork& transit() const { return transit_; }

 private:
  graph::RoadNetwork road_;
  graph::TransitNetwork transit_;
  CtBusOptions options_;
  std::unique_ptr<PlanningContext> context_;
};

}  // namespace ctbus::core

#endif  // CTBUS_CORE_PLANNER_H_
