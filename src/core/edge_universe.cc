#include "core/edge_universe.h"

#include <cassert>

#include "graph/geo.h"
#include "graph/shortest_path.h"
#include "graph/spatial_grid.h"

namespace ctbus::core {

EdgeUniverse EdgeUniverse::Build(const graph::RoadNetwork& road,
                                 const graph::TransitNetwork& transit,
                                 const EdgeUniverseOptions& options) {
  assert(options.tau > 0.0);
  EdgeUniverse universe;
  universe.incident_.resize(transit.num_stops());

  // Existing active transit edges enter the universe verbatim.
  for (int te = 0; te < transit.num_edges(); ++te) {
    if (!transit.EdgeActive(te)) continue;
    const auto& t_edge = transit.edge(te);
    PlannableEdge edge;
    edge.u = t_edge.u;
    edge.v = t_edge.v;
    edge.is_new = false;
    edge.length = t_edge.length;
    edge.straight_distance = graph::Distance(transit.stop(t_edge.u).position,
                                             transit.stop(t_edge.v).position);
    edge.road_edges = t_edge.road_edges;
    edge.demand = road.PathDemand(edge.road_edges);
    edge.transit_edge = te;
    const int id = universe.num_edges();
    universe.edges_.push_back(std::move(edge));
    universe.incident_[t_edge.u].push_back(id);
    universe.incident_[t_edge.v].push_back(id);
  }

  // Candidate new edges: stop pairs within tau, not transit-connected,
  // realized as shortest road paths. One bounded Dijkstra per stop serves
  // all of its tau-neighbors.
  const graph::SpatialGrid grid(transit.StopPositions(),
                                std::max(50.0, options.tau / 2));
  const double max_path_length = options.detour_factor * options.tau;
  for (int s = 0; s < transit.num_stops(); ++s) {
    const auto neighbors =
        grid.WithinRadius(transit.stop(s).position, options.tau);
    bool tree_ready = false;
    graph::ShortestPathTree tree;
    for (int t : neighbors) {
      if (t <= s) continue;  // each unordered pair once
      if (transit.ActiveEdgeBetween(s, t).has_value()) continue;
      if (!tree_ready) {
        tree = graph::DijkstraBounded(road.graph(),
                                      transit.stop(s).road_vertex,
                                      max_path_length);
        tree_ready = true;
      }
      const auto path = graph::ExtractPath(tree, transit.stop(s).road_vertex,
                                           transit.stop(t).road_vertex);
      if (!path.has_value() || path->edges.empty()) continue;
      if (path->length > max_path_length) continue;

      PlannableEdge edge;
      edge.u = s;
      edge.v = t;
      edge.is_new = true;
      edge.length = path->length;
      edge.straight_distance =
          graph::Distance(transit.stop(s).position, transit.stop(t).position);
      edge.road_edges = path->edges;
      edge.demand = road.PathDemand(edge.road_edges);
      edge.transit_edge = -1;
      const int id = universe.num_edges();
      universe.edges_.push_back(std::move(edge));
      universe.incident_[s].push_back(id);
      universe.incident_[t].push_back(id);
      ++universe.num_new_edges_;
    }
  }
  return universe;
}

EdgeUniverse EdgeUniverse::DeriveFrom(const EdgeUniverse& prev,
                                      const graph::RoadNetwork& road,
                                      const graph::TransitNetwork& transit) {
  EdgeUniverse universe;
  universe.incident_.resize(transit.num_stops());

  // Existing-edge section: same enumeration as Build, re-read from the
  // (grown) transit network. Activated and appended edges slot into their
  // transit-id positions exactly as a from-scratch Build would place them.
  for (int te = 0; te < transit.num_edges(); ++te) {
    if (!transit.EdgeActive(te)) continue;
    const auto& t_edge = transit.edge(te);
    PlannableEdge edge;
    edge.u = t_edge.u;
    edge.v = t_edge.v;
    edge.is_new = false;
    edge.length = t_edge.length;
    edge.straight_distance = graph::Distance(transit.stop(t_edge.u).position,
                                             transit.stop(t_edge.v).position);
    edge.road_edges = t_edge.road_edges;
    edge.demand = road.PathDemand(edge.road_edges);
    edge.transit_edge = te;
    const int id = universe.num_edges();
    universe.edges_.push_back(std::move(edge));
    universe.incident_[t_edge.u].push_back(id);
    universe.incident_[t_edge.v].push_back(id);
  }

  // Candidate section: carry over prev's realizations in prev order —
  // which is Build's (stop, grid-neighbor) order, unchanged because stops
  // did not move — dropping pairs that became transit-connected, and
  // re-reading demand from the current road trip counts.
  for (const PlannableEdge& p : prev.edges_) {
    if (!p.is_new) continue;
    if (transit.ActiveEdgeBetween(p.u, p.v).has_value()) continue;
    PlannableEdge edge = p;
    edge.demand = road.PathDemand(edge.road_edges);
    const int id = universe.num_edges();
    universe.incident_[edge.u].push_back(id);
    universe.incident_[edge.v].push_back(id);
    universe.edges_.push_back(std::move(edge));
    ++universe.num_new_edges_;
  }
  return universe;
}

EdgeUniverse EdgeUniverse::FromEdges(std::vector<PlannableEdge> edges,
                                     int num_stops) {
  EdgeUniverse universe;
  universe.incident_.resize(num_stops);
  universe.edges_ = std::move(edges);
  for (int id = 0; id < universe.num_edges(); ++id) {
    const PlannableEdge& edge = universe.edges_[id];
    assert(edge.u >= 0 && edge.u < num_stops);
    assert(edge.v >= 0 && edge.v < num_stops);
    universe.incident_[edge.u].push_back(id);
    universe.incident_[edge.v].push_back(id);
    if (edge.is_new) ++universe.num_new_edges_;
  }
  return universe;
}

std::size_t EdgeUniverse::ApproxBytes() const {
  std::size_t bytes = sizeof(EdgeUniverse) +
                      edges_.size() * sizeof(PlannableEdge) +
                      incident_.size() * sizeof(std::vector<int>) +
                      2 * edges_.size() * sizeof(int);  // incidence entries
  for (const PlannableEdge& edge : edges_) {
    bytes += edge.road_edges.size() * sizeof(int);
  }
  return bytes;
}

std::vector<double> EdgeUniverse::DemandScores() const {
  std::vector<double> scores(edges_.size());
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    scores[e] = edges_[e].demand;
  }
  return scores;
}

}  // namespace ctbus::core
