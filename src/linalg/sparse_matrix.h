// Symmetric sparse matrix stored as per-row adjacency lists.
//
// This is the adjacency-matrix representation used for transit networks: the
// CT-Bus search adds and removes candidate edges thousands of times, so the
// storage is optimized for O(deg) edge insertion/removal plus fast
// matrix-vector products, rather than for a frozen CSR layout.
#ifndef CTBUS_LINALG_SPARSE_MATRIX_H_
#define CTBUS_LINALG_SPARSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matvec.h"

namespace ctbus::linalg {

class CsrMatrix;

/// Symmetric matrix with zero diagonal (a weighted undirected adjacency
/// matrix). Entries are stored twice, once per incident row.
class SymmetricSparseMatrix : public MatVec {
 public:
  struct Entry {
    int col = 0;
    double value = 0.0;
  };

  SymmetricSparseMatrix() = default;
  explicit SymmetricSparseMatrix(int n) : rows_(n) {}

  int dim() const override { return static_cast<int>(rows_.size()); }

  /// Number of stored symmetric entries (each off-diagonal pair counts once).
  std::int64_t num_entries() const { return num_entries_; }

  /// Sets A[u][v] = A[v][u] = value. Overwrites an existing entry.
  /// Throws std::invalid_argument if u == v (a diagonal entry would
  /// silently break the zero-diagonal invariant that Remove and
  /// num_entries() rely on) and std::out_of_range if either index is
  /// outside [0, dim()). Validation is always on — asserts compile out in
  /// release builds, and a corrupted matrix poisons every cached
  /// Precompute table built from it.
  void Set(int u, int v, double value);

  /// Adds `delta` to A[u][v] (creating the entry if absent). Same
  /// always-on precondition validation as Set.
  void Add(int u, int v, double delta);

  /// Removes the (u, v) entry if present; returns true if it existed.
  /// Same always-on precondition validation as Set.
  bool Remove(int u, int v);

  /// Returns A[u][v] (0.0 if no stored entry).
  double At(int u, int v) const;

  /// True if a (u, v) entry is stored.
  bool Contains(int u, int v) const;

  /// Number of stored entries in row u.
  int RowDegree(int u) const { return static_cast<int>(rows_[u].size()); }

  /// Stored entries of row u.
  const std::vector<Entry>& Row(int u) const { return rows_[u]; }

  /// y = A x.
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;

  /// Freezes the current contents into a contiguous CSR matrix for the
  /// estimator hot path. Per-row entry order is preserved, so CSR matvec
  /// results are bit-identical to Apply on this matrix.
  CsrMatrix Freeze() const;

  /// Cheap upper bound on the spectral norm: max over rows of the row sum of
  /// absolute values (the infinity norm, which dominates ||A||_2 for
  /// symmetric A).
  double SpectralNormUpperBound() const;

  /// Approximate resident footprint in bytes (rows + stored entries),
  /// deterministic and O(1) — each symmetric entry is stored twice.
  std::size_t ApproxBytes() const {
    return sizeof(SymmetricSparseMatrix) +
           rows_.size() * sizeof(std::vector<Entry>) +
           2 * static_cast<std::size_t>(num_entries_) * sizeof(Entry);
  }

 private:
  // Returns the index of `col` in rows_[row], or -1.
  int FindInRow(int row, int col) const;

  std::vector<std::vector<Entry>> rows_;
  std::int64_t num_entries_ = 0;
};

}  // namespace ctbus::linalg

#endif  // CTBUS_LINALG_SPARSE_MATRIX_H_
