#include "linalg/csr_matrix.h"

#include <cassert>

#include "linalg/sparse_matrix.h"

namespace ctbus::linalg {
namespace {

// Lane-chunk width for ApplyBatch: lanes are processed kLaneBlock at a
// time so each chunk's accumulators stay resident while a row's entries
// stream past. 32 lanes * 8 bytes = 256 bytes of accumulator state, well
// within register+L1 reach, and covers the default probe count (50) in
// two chunks.
constexpr int kLaneBlock = 32;

}  // namespace

CsrMatrix CsrMatrix::FromSparse(const SymmetricSparseMatrix& a) {
  CsrMatrix csr;
  csr.AssignFrom(a);
  return csr;
}

void CsrMatrix::AssignFrom(const SymmetricSparseMatrix& a) {
  const int n = a.dim();
  n_ = n;
  row_ptr_.resize(static_cast<std::size_t>(n) + 1);
  std::int64_t nnz = 0;
  row_ptr_[0] = 0;
  for (int i = 0; i < n; ++i) {
    nnz += a.RowDegree(i);
    row_ptr_[static_cast<std::size_t>(i) + 1] = nnz;
  }
  col_.resize(static_cast<std::size_t>(nnz));
  value_.resize(static_cast<std::size_t>(nnz));
  std::int64_t out = 0;
  for (int i = 0; i < n; ++i) {
    // Stored entry order within each row is preserved exactly: Apply's
    // accumulation order (and therefore its FP result) matches the
    // adjacency-list Apply bit for bit.
    for (const SymmetricSparseMatrix::Entry& e : a.Row(i)) {
      col_[static_cast<std::size_t>(out)] = e.col;
      value_[static_cast<std::size_t>(out)] = e.value;
      ++out;
    }
  }
  assert(out == nnz);
}

void CsrMatrix::Apply(const std::vector<double>& x,
                      std::vector<double>* y) const {
  assert(static_cast<int>(x.size()) == n_);
  assert(static_cast<int>(y->size()) == n_);
  const std::int64_t* row_ptr = row_ptr_.data();
  const int* col = col_.data();
  const double* value = value_.data();
  const double* xs = x.data();
  double* ys = y->data();
  for (int i = 0; i < n_; ++i) {
    const std::int64_t begin = row_ptr[i];
    const std::int64_t end = row_ptr[i + 1];
    // Single sequential accumulator chain in stored order — the unroll
    // only widens the load stream; it must NOT split `acc` into partial
    // sums or the FP order (and bit-identity with the adjacency path)
    // would change.
    double acc = 0.0;
    std::int64_t j = begin;
    for (; j + 4 <= end; j += 4) {
      acc += value[j] * xs[col[j]];
      acc += value[j + 1] * xs[col[j + 1]];
      acc += value[j + 2] * xs[col[j + 2]];
      acc += value[j + 3] * xs[col[j + 3]];
    }
    for (; j < end; ++j) acc += value[j] * xs[col[j]];
    ys[i] = acc;
  }
}

void CsrMatrix::ApplyBatch(const double* x, int batch, double* y) const {
  assert(batch >= 0);
  if (batch <= 0) return;
  const std::int64_t* row_ptr = row_ptr_.data();
  const int* col = col_.data();
  const double* value = value_.data();
  double acc[kLaneBlock];
  for (int b0 = 0; b0 < batch; b0 += kLaneBlock) {
    const int lanes = b0 + kLaneBlock <= batch ? kLaneBlock : batch - b0;
    for (int i = 0; i < n_; ++i) {
      for (int l = 0; l < lanes; ++l) acc[l] = 0.0;
      const std::int64_t end = row_ptr[i + 1];
      for (std::int64_t j = row_ptr[i]; j < end; ++j) {
        // One entry feeds every lane in the chunk: the matrix is streamed
        // once per chunk instead of once per probe. Each lane accumulates
        // in its own slot in stored entry order, so lane b's result is
        // bit-identical to Apply on that lane alone.
        const double a = value[j];
        const double* xrow = x + static_cast<std::int64_t>(col[j]) * batch + b0;
        for (int l = 0; l < lanes; ++l) acc[l] += a * xrow[l];
      }
      double* yrow = y + static_cast<std::int64_t>(i) * batch + b0;
      for (int l = 0; l < lanes; ++l) yrow[l] = acc[l];
    }
  }
}

}  // namespace ctbus::linalg
