#include "linalg/vector_ops.h"

#include <cassert>
#include <cmath>

namespace ctbus::linalg {

double Dot(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double Norm2(const std::vector<double>& x) { return std::sqrt(Dot(x, x)); }

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  assert(x.size() == y->size());
  for (std::size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, std::vector<double>* x) {
  for (double& v : *x) v *= alpha;
}

void FillGaussian(Rng* rng, std::vector<double>* x) {
  for (double& v : *x) v = rng->NextGaussian();
}

void FillRademacher(Rng* rng, std::vector<double>* x) {
  for (double& v : *x) v = rng->NextBool(0.5) ? 1.0 : -1.0;
}

double Normalize(std::vector<double>* x) {
  const double norm = Norm2(*x);
  if (norm > 0.0) Scale(1.0 / norm, x);
  return norm;
}

}  // namespace ctbus::linalg
