#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ctbus::linalg {

int SymmetricSparseMatrix::FindInRow(int row, int col) const {
  const auto& entries = rows_[row];
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].col == col) return static_cast<int>(i);
  }
  return -1;
}

void SymmetricSparseMatrix::Set(int u, int v, double value) {
  assert(u != v);
  assert(u >= 0 && u < dim() && v >= 0 && v < dim());
  const int iu = FindInRow(u, v);
  if (iu >= 0) {
    rows_[u][iu].value = value;
    rows_[v][FindInRow(v, u)].value = value;
    return;
  }
  rows_[u].push_back({v, value});
  rows_[v].push_back({u, value});
  ++num_entries_;
}

void SymmetricSparseMatrix::Add(int u, int v, double delta) {
  const int iu = FindInRow(u, v);
  if (iu < 0) {
    Set(u, v, delta);
    return;
  }
  rows_[u][iu].value += delta;
  rows_[v][FindInRow(v, u)].value += delta;
}

bool SymmetricSparseMatrix::Remove(int u, int v) {
  const int iu = FindInRow(u, v);
  if (iu < 0) return false;
  rows_[u][iu] = rows_[u].back();
  rows_[u].pop_back();
  const int iv = FindInRow(v, u);
  rows_[v][iv] = rows_[v].back();
  rows_[v].pop_back();
  --num_entries_;
  return true;
}

double SymmetricSparseMatrix::At(int u, int v) const {
  const int iu = FindInRow(u, v);
  return iu < 0 ? 0.0 : rows_[u][iu].value;
}

bool SymmetricSparseMatrix::Contains(int u, int v) const {
  return FindInRow(u, v) >= 0;
}

void SymmetricSparseMatrix::Apply(const std::vector<double>& x,
                                  std::vector<double>* y) const {
  assert(static_cast<int>(x.size()) == dim());
  assert(static_cast<int>(y->size()) == dim());
  const int n = dim();
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (const Entry& e : rows_[i]) acc += e.value * x[e.col];
    (*y)[i] = acc;
  }
}

double SymmetricSparseMatrix::SpectralNormUpperBound() const {
  double best = 0.0;
  for (const auto& row : rows_) {
    double sum = 0.0;
    for (const Entry& e : row) sum += std::abs(e.value);
    best = std::max(best, sum);
  }
  return best;
}

}  // namespace ctbus::linalg
