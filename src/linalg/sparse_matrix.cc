#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "linalg/csr_matrix.h"

namespace ctbus::linalg {
namespace {

// Always-on precondition check shared by Set/Add/Remove. These used to be
// asserts, which compile out under NDEBUG: a release-mode Set(u, u, w)
// stored a diagonal entry exactly once (breaking the store-twice
// invariant), after which Remove(u, u) popped an unrelated entry and
// num_entries() drifted — silent corruption that ends up inside cached
// Precompute tables. The io/parse layers already throw on malformed
// input; matrix mutation follows the same discipline.
void ValidateOffDiagonal(const char* op, int u, int v, int dim) {
  if (u == v) {
    throw std::invalid_argument(
        std::string("SymmetricSparseMatrix::") + op + ": diagonal entry (" +
        std::to_string(u) + ", " + std::to_string(v) +
        ") violates the zero-diagonal invariant");
  }
  if (u < 0 || u >= dim || v < 0 || v >= dim) {
    throw std::out_of_range(std::string("SymmetricSparseMatrix::") + op +
                            ": index (" + std::to_string(u) + ", " +
                            std::to_string(v) + ") outside [0, " +
                            std::to_string(dim) + ")");
  }
}

}  // namespace

int SymmetricSparseMatrix::FindInRow(int row, int col) const {
  const auto& entries = rows_[row];
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].col == col) return static_cast<int>(i);
  }
  return -1;
}

void SymmetricSparseMatrix::Set(int u, int v, double value) {
  ValidateOffDiagonal("Set", u, v, dim());
  const int iu = FindInRow(u, v);
  if (iu >= 0) {
    rows_[u][iu].value = value;
    rows_[v][FindInRow(v, u)].value = value;
    return;
  }
  rows_[u].push_back({v, value});
  rows_[v].push_back({u, value});
  ++num_entries_;
}

void SymmetricSparseMatrix::Add(int u, int v, double delta) {
  ValidateOffDiagonal("Add", u, v, dim());
  const int iu = FindInRow(u, v);
  if (iu < 0) {
    Set(u, v, delta);
    return;
  }
  rows_[u][iu].value += delta;
  rows_[v][FindInRow(v, u)].value += delta;
}

bool SymmetricSparseMatrix::Remove(int u, int v) {
  ValidateOffDiagonal("Remove", u, v, dim());
  const int iu = FindInRow(u, v);
  if (iu < 0) return false;
  rows_[u][iu] = rows_[u].back();
  rows_[u].pop_back();
  const int iv = FindInRow(v, u);
  rows_[v][iv] = rows_[v].back();
  rows_[v].pop_back();
  --num_entries_;
  return true;
}

double SymmetricSparseMatrix::At(int u, int v) const {
  const int iu = FindInRow(u, v);
  return iu < 0 ? 0.0 : rows_[u][iu].value;
}

bool SymmetricSparseMatrix::Contains(int u, int v) const {
  return FindInRow(u, v) >= 0;
}

void SymmetricSparseMatrix::Apply(const std::vector<double>& x,
                                  std::vector<double>* y) const {
  assert(static_cast<int>(x.size()) == dim());
  assert(static_cast<int>(y->size()) == dim());
  const int n = dim();
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (const Entry& e : rows_[i]) acc += e.value * x[e.col];
    (*y)[i] = acc;
  }
}

CsrMatrix SymmetricSparseMatrix::Freeze() const {
  return CsrMatrix::FromSparse(*this);
}

double SymmetricSparseMatrix::SpectralNormUpperBound() const {
  double best = 0.0;
  for (const auto& row : rows_) {
    double sum = 0.0;
    for (const Entry& e : row) sum += std::abs(e.value);
    best = std::max(best, sum);
  }
  return best;
}

}  // namespace ctbus::linalg
