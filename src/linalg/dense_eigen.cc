#include "linalg/dense_eigen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <numeric>

namespace ctbus::linalg {

namespace {

// Householder reduction of the symmetric matrix stored in `v` to tridiagonal
// form (diagonal `d`, subdiagonal in e[1..n-1]). When `accumulate` is true,
// `v` is overwritten with the orthogonal matrix Q such that A = Q T Q^T.
// Port of the EISPACK tred2 routine (via the public-domain JAMA package).
void Tred2(DenseMatrix* v, std::vector<double>* d_out,
           std::vector<double>* e_out, bool accumulate) {
  const int n = v->rows();
  std::vector<double>& d = *d_out;
  std::vector<double>& e = *e_out;
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  for (int j = 0; j < n; ++j) d[j] = v->At(n - 1, j);

  for (int i = n - 1; i > 0; --i) {
    double scale = 0.0;
    double h = 0.0;
    for (int k = 0; k < i; ++k) scale += std::abs(d[k]);
    if (scale == 0.0) {
      e[i] = d[i - 1];
      for (int j = 0; j < i; ++j) {
        d[j] = v->At(i - 1, j);
        v->Set(i, j, 0.0);
        v->Set(j, i, 0.0);
      }
    } else {
      for (int k = 0; k < i; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      double f = d[i - 1];
      double g = std::sqrt(h);
      if (f > 0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;
      for (int j = 0; j < i; ++j) e[j] = 0.0;

      for (int j = 0; j < i; ++j) {
        f = d[j];
        v->Set(j, i, f);
        g = e[j] + v->At(j, j) * f;
        for (int k = j + 1; k <= i - 1; ++k) {
          g += v->At(k, j) * d[k];
          e[k] += v->At(k, j) * f;
        }
        e[j] = g;
      }
      f = 0.0;
      for (int j = 0; j < i; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const double hh = f / (h + h);
      for (int j = 0; j < i; ++j) e[j] -= hh * d[j];
      for (int j = 0; j < i; ++j) {
        f = d[j];
        g = e[j];
        for (int k = j; k <= i - 1; ++k) {
          v->MutableAt(k, j) -= (f * e[k] + g * d[k]);
        }
        d[j] = v->At(i - 1, j);
        v->Set(i, j, 0.0);
      }
    }
    d[i] = h;
  }

  if (accumulate) {
    for (int i = 0; i < n - 1; ++i) {
      v->Set(n - 1, i, v->At(i, i));
      v->Set(i, i, 1.0);
      const double h = d[i + 1];
      if (h != 0.0) {
        for (int k = 0; k <= i; ++k) d[k] = v->At(k, i + 1) / h;
        for (int j = 0; j <= i; ++j) {
          double g = 0.0;
          for (int k = 0; k <= i; ++k) g += v->At(k, i + 1) * v->At(k, j);
          for (int k = 0; k <= i; ++k) v->MutableAt(k, j) -= g * d[k];
        }
      }
      for (int k = 0; k <= i; ++k) v->Set(k, i + 1, 0.0);
    }
    for (int j = 0; j < n; ++j) {
      d[j] = v->At(n - 1, j);
      v->Set(n - 1, j, 0.0);
    }
    v->Set(n - 1, n - 1, 1.0);
  } else {
    // Without accumulation the tridiagonal diagonal sits on the (in-place
    // updated) matrix diagonal.
    for (int j = 0; j < n; ++j) d[j] = v->At(j, j);
  }
  e[0] = 0.0;
}

// Implicit-shift QL iteration on the tridiagonal matrix (d, e[1..n-1]).
// On exit `d` holds the eigenvalues, unsorted. When `v` is non-null the
// rotations are accumulated into it (columns become eigenvectors of the
// original matrix that produced v's initial content).
// Port of the EISPACK tql2 routine (via JAMA).
void Tql2(std::vector<double>* d_inout, std::vector<double>* e_inout,
          DenseMatrix* v) {
  std::vector<double>& d = *d_inout;
  std::vector<double>& e = *e_inout;
  const int n = static_cast<int>(d.size());
  for (int i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  double f = 0.0;
  double tst1 = 0.0;
  const double eps = std::ldexp(1.0, -52);
  for (int l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::abs(d[l]) + std::abs(e[l]));
    int m = l;
    while (m < n) {
      if (std::abs(e[m]) <= eps * tst1) break;
      ++m;
    }
    if (m > l) {
      int iter = 0;
      do {
        ++iter;
        // 50 iterations is far beyond what a well-conditioned tridiagonal
        // problem needs; hitting it indicates corrupted input.
        assert(iter < 50 && "tql2 failed to converge");
        double g = d[l];
        double p = (d[l + 1] - g) / (2.0 * e[l]);
        double r = std::hypot(p, 1.0);
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const double dl1 = d[l + 1];
        double h = g - d[l];
        for (int i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        p = d[m];
        double c = 1.0;
        double c2 = c;
        double c3 = c;
        const double el1 = e[l + 1];
        double s = 0.0;
        double s2 = 0.0;
        for (int i = m - 1; i >= l; --i) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = std::hypot(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);
          if (v != nullptr) {
            const int vn = v->rows();
            for (int k = 0; k < vn; ++k) {
              h = v->At(k, i + 1);
              v->Set(k, i + 1, s * v->At(k, i) + c * h);
              v->Set(k, i, c * v->At(k, i) - s * h);
            }
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::abs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }
}

// Sorts eigenvalues ascending, permuting eigenvector columns to match.
void SortAscending(std::vector<double>* values, DenseMatrix* vectors) {
  const int n = static_cast<int>(values->size());
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return (*values)[a] < (*values)[b];
  });
  std::vector<double> sorted_values(n);
  for (int j = 0; j < n; ++j) sorted_values[j] = (*values)[order[j]];
  if (vectors != nullptr && vectors->rows() > 0) {
    DenseMatrix sorted(vectors->rows(), vectors->cols());
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < vectors->rows(); ++i) {
        sorted.Set(i, j, vectors->At(i, order[j]));
      }
    }
    *vectors = std::move(sorted);
  }
  *values = std::move(sorted_values);
}

}  // namespace

SymmetricEigenResult SymmetricEigen(const DenseMatrix& a,
                                    bool compute_vectors) {
  assert(a.rows() == a.cols());
  SymmetricEigenResult result;
  const int n = a.rows();
  if (n == 0) return result;
  DenseMatrix v = a;
  std::vector<double> d;
  std::vector<double> e;
  Tred2(&v, &d, &e, compute_vectors);
  Tql2(&d, &e, compute_vectors ? &v : nullptr);
  result.eigenvalues = std::move(d);
  if (compute_vectors) result.eigenvectors = std::move(v);
  SortAscending(&result.eigenvalues,
                compute_vectors ? &result.eigenvectors : nullptr);
  return result;
}

std::vector<double> SymmetricEigenvalues(const DenseMatrix& a) {
  return SymmetricEigen(a, /*compute_vectors=*/false).eigenvalues;
}

SymmetricEigenResult TridiagonalEigen(const std::vector<double>& diag,
                                      const std::vector<double>& off,
                                      bool compute_vectors) {
  const int n = static_cast<int>(diag.size());
  assert(static_cast<int>(off.size()) == (n > 0 ? n - 1 : 0));
  SymmetricEigenResult result;
  if (n == 0) return result;
  std::vector<double> d = diag;
  // Tql2 expects the subdiagonal in e[1..n-1] before its internal shift.
  std::vector<double> e(n, 0.0);
  for (int i = 1; i < n; ++i) e[i] = off[i - 1];
  DenseMatrix v;
  if (compute_vectors) v = DenseMatrix::Identity(n);
  Tql2(&d, &e, compute_vectors ? &v : nullptr);
  result.eigenvalues = std::move(d);
  if (compute_vectors) result.eigenvectors = std::move(v);
  SortAscending(&result.eigenvalues,
                compute_vectors ? &result.eigenvectors : nullptr);
  return result;
}

}  // namespace ctbus::linalg
