// Small dense matrices (row-major). Used for the exact eigensolver baseline
// and for the tridiagonal eigenproblems inside Lanczos quadrature.
#ifndef CTBUS_LINALG_DENSE_MATRIX_H_
#define CTBUS_LINALG_DENSE_MATRIX_H_

#include <vector>

#include "linalg/matvec.h"

namespace ctbus::linalg {

class SymmetricSparseMatrix;

/// Row-major dense matrix. Rows == cols for all uses in this library.
class DenseMatrix : public MatVec {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols) {}

  static DenseMatrix Identity(int n);

  /// Densifies a sparse symmetric matrix.
  static DenseMatrix FromSparse(const SymmetricSparseMatrix& a);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int dim() const override { return rows_; }

  double At(int i, int j) const { return data_[Index(i, j)]; }
  double& MutableAt(int i, int j) { return data_[Index(i, j)]; }
  void Set(int i, int j, double value) { data_[Index(i, j)] = value; }

  /// y = A x (requires rows == cols).
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;

  /// Returns column j as a vector.
  std::vector<double> Column(int j) const;

  /// Frobenius-norm distance to another matrix of the same shape.
  double FrobeniusDistance(const DenseMatrix& other) const;

 private:
  std::size_t Index(int i, int j) const {
    return static_cast<std::size_t>(i) * cols_ + j;
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ctbus::linalg

#endif  // CTBUS_LINALG_DENSE_MATRIX_H_
