// Lanczos method for symmetric operators: tridiagonalization, approximation
// of exp(A)v, Gaussian quadrature for v^T exp(A) v, and top-k eigenvalue
// extraction. Together with Hutchinson's estimator (hutchinson.h) this is the
// fast connectivity machinery of Section 5.1 of the CT-Bus paper.
#ifndef CTBUS_LINALG_LANCZOS_H_
#define CTBUS_LINALG_LANCZOS_H_

#include <vector>

#include "linalg/matvec.h"
#include "linalg/rng.h"

namespace ctbus::linalg {

/// Output of a Lanczos run: T = tridiag(alpha, beta) with V^T A V = T.
struct LanczosResult {
  /// Diagonal of T; size == steps actually performed (<= requested).
  std::vector<double> alpha;
  /// Subdiagonal of T; size == steps - 1.
  std::vector<double> beta;
  /// Orthonormal Lanczos basis vectors v_0 .. v_{steps-1}; only populated
  /// when requested (needed to reconstruct exp(A)v, not for quadrature).
  std::vector<std::vector<double>> basis;
  /// True if the iteration hit an invariant subspace (beta underflow), in
  /// which case the result is exact on that subspace.
  bool broke_down = false;
};

/// Options for the Lanczos iteration.
struct LanczosOptions {
  /// Number of iterations t. The paper's default for connectivity estimation.
  int steps = 10;
  /// Keep the basis vectors (memory O(n * steps)).
  bool keep_basis = false;
  /// Re-orthogonalize each new vector against the whole basis. Required for
  /// accurate extreme eigenvalues; implies keep_basis internally.
  bool full_reorthogonalize = false;
};

/// Runs Lanczos from starting vector v0 (need not be normalized).
LanczosResult LanczosTridiagonalize(const MatVec& a,
                                    const std::vector<double>& v0,
                                    const LanczosOptions& options);

/// Approximates s = exp(A) v with `steps` Lanczos iterations:
///   s = ||v|| * V * exp(T) * e1.
/// Error bound (Lemma 2, after Musco et al.): after
/// t = O(||A||_2 + log(1/eps)) steps, ||s - exp(A) v|| <= eps tr(e^A) ||v||.
std::vector<double> LanczosExpApply(const MatVec& a,
                                    const std::vector<double>& v, int steps);

/// Approximates the quadratic form v^T exp(A) v by Lanczos quadrature:
///   ||v||^2 * (e1^T exp(T) e1).
/// This never materializes the basis, so it costs O(steps * nnz) time and
/// O(n) memory — the inner kernel of the trace estimator.
double LanczosExpQuadrature(const MatVec& a, const std::vector<double>& v,
                            int steps);

/// Batched Lanczos quadrature: result[b] == LanczosExpQuadrature(a, vs[b],
/// steps) bit for bit. All lanes advance in lockstep through a single
/// MatVec::ApplyBatch per iteration, so the matrix is traversed once per
/// step instead of once per probe; each lane keeps its own alpha/beta
/// recurrence and drops out independently on breakdown, and every scalar
/// reduction walks elements in the same order as the serial kernels, so
/// the per-lane FP sequence is unchanged.
std::vector<double> LanczosExpQuadratureBatch(
    const MatVec& a, const std::vector<std::vector<double>>& vs, int steps);

/// Largest `k` eigenvalues of `a` (descending), computed by Lanczos with full
/// reorthogonalization using `iters >= k` iterations from a random start.
/// Accurate for the well-separated extreme eigenvalues the CT-Bus bounds
/// need (Lemma 3 uses the top 2k, Lemma 4 the top floor((k+1)/2)).
std::vector<double> TopEigenvalues(const MatVec& a, int k, int iters,
                                   Rng* rng);

/// Top eigenpairs: eigenvalues descending plus the matching Ritz vectors.
struct TopEigenpairsResult {
  /// Largest eigenvalues, descending.
  std::vector<double> eigenvalues;
  /// eigenvectors[j] is the unit Ritz vector for eigenvalues[j].
  std::vector<std::vector<double>> eigenvectors;
};

/// Largest `k` eigenpairs of `a`, via Lanczos with full
/// reorthogonalization. Ritz vectors are V * y_j for the tridiagonal
/// eigenvectors y_j. Used by the perturbation-theory increment model.
TopEigenpairsResult TopEigenpairs(const MatVec& a, int k, int iters,
                                  Rng* rng);

/// Estimate of the spectral norm ||A||_2 = max(|lambda_max|, |lambda_min|).
double SpectralNormEstimate(const MatVec& a, int iters, Rng* rng);

}  // namespace ctbus::linalg

#endif  // CTBUS_LINALG_LANCZOS_H_
