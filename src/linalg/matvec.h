// Abstract matrix-vector product, the only interface the iterative methods
// (Lanczos, Hutchinson) need. Implemented by SymmetricSparseMatrix and
// DenseMatrix. All operators in this library are symmetric.
#ifndef CTBUS_LINALG_MATVEC_H_
#define CTBUS_LINALG_MATVEC_H_

#include <vector>

namespace ctbus::linalg {

/// A symmetric linear operator R^n -> R^n exposed through y = A x.
class MatVec {
 public:
  virtual ~MatVec() = default;

  /// Dimension n of the operator.
  virtual int dim() const = 0;

  /// Computes y = A x. Requires x.size() == y->size() == dim().
  virtual void Apply(const std::vector<double>& x,
                     std::vector<double>* y) const = 0;
};

}  // namespace ctbus::linalg

#endif  // CTBUS_LINALG_MATVEC_H_
