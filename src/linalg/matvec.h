// Abstract matrix-vector product, the only interface the iterative methods
// (Lanczos, Hutchinson) need. Implemented by SymmetricSparseMatrix and
// DenseMatrix. All operators in this library are symmetric.
#ifndef CTBUS_LINALG_MATVEC_H_
#define CTBUS_LINALG_MATVEC_H_

#include <vector>

namespace ctbus::linalg {

/// A symmetric linear operator R^n -> R^n exposed through y = A x.
class MatVec {
 public:
  virtual ~MatVec() = default;

  /// Dimension n of the operator.
  virtual int dim() const = 0;

  /// Computes y = A x. Requires x.size() == y->size() == dim().
  virtual void Apply(const std::vector<double>& x,
                     std::vector<double>* y) const = 0;

  /// Computes Y = A X for `batch` right-hand sides stored SoA-interleaved:
  /// element (i, b) lives at x[i * batch + b] (and likewise in y). Each
  /// lane's result is bit-identical to a single-vector Apply of that lane:
  /// the default implementation literally unpacks one lane at a time, and
  /// overrides (CsrMatrix) keep every lane's accumulation in its own
  /// register so the per-lane FP order is unchanged while the matrix is
  /// traversed once for all lanes.
  virtual void ApplyBatch(const double* x, int batch, double* y) const {
    std::vector<double> lane_x(dim());
    std::vector<double> lane_y(dim());
    for (int b = 0; b < batch; ++b) {
      for (int i = 0; i < dim(); ++i) lane_x[i] = x[i * batch + b];
      Apply(lane_x, &lane_y);
      for (int i = 0; i < dim(); ++i) y[i * batch + b] = lane_y[i];
    }
  }
};

}  // namespace ctbus::linalg

#endif  // CTBUS_LINALG_MATVEC_H_
