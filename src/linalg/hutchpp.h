// Hutch++ trace estimation (Meyer, Musco, Musco, Woodruff, SOSA 2021 —
// reference [42] of the CT-Bus paper): split the probe budget between a
// low-rank sketch that captures the heavy eigendirections exactly and a
// Hutchinson pass on the deflated remainder. Error decays O(1/s) in the
// probe budget versus Hutchinson's O(1/sqrt(s)), which matters for e^A
// whose trace is dominated by a few top eigenvalues.
//
// Matrix products with e^A are evaluated by Lanczos (LanczosExpApply),
// exactly as in the plain estimator.
#ifndef CTBUS_LINALG_HUTCHPP_H_
#define CTBUS_LINALG_HUTCHPP_H_

#include "linalg/matvec.h"
#include "linalg/rng.h"

namespace ctbus::linalg {

struct HutchPlusPlusOptions {
  /// Total probe budget s; split s/3 sketch, s/3 projection, s/3 residual.
  int probes = 48;
  /// Lanczos iterations per e^A v application.
  int lanczos_steps = 10;
};

/// Estimates tr(exp(A)) with the Hutch++ scheme.
double EstimateTraceExpHutchPlusPlus(const MatVec& a,
                                     const HutchPlusPlusOptions& options,
                                     Rng* rng);

}  // namespace ctbus::linalg

#endif  // CTBUS_LINALG_HUTCHPP_H_
