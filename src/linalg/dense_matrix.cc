#include "linalg/dense_matrix.h"

#include <cassert>
#include <cmath>

#include "linalg/sparse_matrix.h"

namespace ctbus::linalg {

DenseMatrix DenseMatrix::Identity(int n) {
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) m.Set(i, i, 1.0);
  return m;
}

DenseMatrix DenseMatrix::FromSparse(const SymmetricSparseMatrix& a) {
  const int n = a.dim();
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) {
    for (const auto& e : a.Row(i)) m.Set(i, e.col, e.value);
  }
  return m;
}

void DenseMatrix::Apply(const std::vector<double>& x,
                        std::vector<double>* y) const {
  assert(rows_ == cols_);
  assert(static_cast<int>(x.size()) == cols_);
  assert(static_cast<int>(y->size()) == rows_);
  for (int i = 0; i < rows_; ++i) {
    double acc = 0.0;
    const double* row = &data_[Index(i, 0)];
    for (int j = 0; j < cols_; ++j) acc += row[j] * x[j];
    (*y)[i] = acc;
  }
}

std::vector<double> DenseMatrix::Column(int j) const {
  std::vector<double> col(rows_);
  for (int i = 0; i < rows_; ++i) col[i] = At(i, j);
  return col;
}

double DenseMatrix::FrobeniusDistance(const DenseMatrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace ctbus::linalg
