#include "linalg/hutchpp.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "linalg/lanczos.h"
#include "linalg/vector_ops.h"

namespace ctbus::linalg {

namespace {

// Orthonormalizes `vectors` in place with two-pass modified Gram-Schmidt,
// dropping near-dependent columns.
void Orthonormalize(std::vector<std::vector<double>>* vectors) {
  std::vector<std::vector<double>> basis;
  for (auto& v : *vectors) {
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& q : basis) {
        Axpy(-Dot(v, q), q, &v);
      }
    }
    if (Normalize(&v) > 1e-10) basis.push_back(std::move(v));
  }
  *vectors = std::move(basis);
}

}  // namespace

double EstimateTraceExpHutchPlusPlus(const MatVec& a,
                                     const HutchPlusPlusOptions& options,
                                     Rng* rng) {
  const int n = a.dim();
  assert(options.probes >= 3);
  if (n == 0) return 0.0;
  const int sketch = std::max(1, options.probes / 3);
  const int residual_probes = std::max(1, options.probes - 2 * sketch);

  // 1. Sketch the heavy eigendirections: Q = orth(exp(A) S).
  std::vector<std::vector<double>> q(sketch, std::vector<double>(n));
  for (auto& column : q) {
    std::vector<double> s(n);
    FillGaussian(rng, &s);
    column = LanczosExpApply(a, s, options.lanczos_steps);
  }
  Orthonormalize(&q);

  // 2. Exact trace over the sketched subspace: sum_i q_i^T exp(A) q_i.
  double trace = 0.0;
  std::vector<std::vector<double>> exp_a_q;
  exp_a_q.reserve(q.size());
  for (const auto& column : q) {
    exp_a_q.push_back(LanczosExpApply(a, column, options.lanczos_steps));
    trace += Dot(column, exp_a_q.back());
  }

  // 3. Hutchinson on the deflated remainder: g' = (I - QQ^T) g, and
  //    accumulate g'^T exp(A) g' minus its component inside the subspace.
  double residual = 0.0;
  for (int i = 0; i < residual_probes; ++i) {
    std::vector<double> g(n);
    FillGaussian(rng, &g);
    for (const auto& column : q) {
      Axpy(-Dot(g, column), column, &g);
    }
    const auto exp_a_g = LanczosExpApply(a, g, options.lanczos_steps);
    // Project the output too: g'^T (I-QQ^T) exp(A) (I-QQ^T) g'.
    std::vector<double> projected = exp_a_g;
    for (const auto& column : q) {
      Axpy(-Dot(exp_a_g, column), column, &projected);
    }
    residual += Dot(g, projected);
  }
  return trace + residual / residual_probes;
}

}  // namespace ctbus::linalg
