// Dense symmetric eigensolver built from scratch: Householder reduction to
// tridiagonal form followed by the implicit-shift QL iteration (the classic
// tred2/tql2 pair). This is the exact-eigendecomposition baseline from
// Table 2 of the paper ("Eigen NumPy" column) and the ground truth against
// which the Lanczos estimates are validated.
#ifndef CTBUS_LINALG_DENSE_EIGEN_H_
#define CTBUS_LINALG_DENSE_EIGEN_H_

#include <vector>

#include "linalg/dense_matrix.h"

namespace ctbus::linalg {

/// Result of a symmetric eigendecomposition A = Z diag(w) Z^T.
struct SymmetricEigenResult {
  /// Eigenvalues in ascending order.
  std::vector<double> eigenvalues;
  /// Column j of this matrix is the unit eigenvector for eigenvalues[j].
  /// Empty (0x0) when eigenvectors were not requested.
  DenseMatrix eigenvectors;
};

/// Full eigendecomposition of a dense symmetric matrix.
/// Only the lower/upper symmetric content of `a` is read; `a` must be square.
SymmetricEigenResult SymmetricEigen(const DenseMatrix& a,
                                    bool compute_vectors);

/// Eigenvalues only (ascending); avoids accumulating the orthogonal factor.
std::vector<double> SymmetricEigenvalues(const DenseMatrix& a);

/// Eigendecomposition of a symmetric tridiagonal matrix given by its
/// diagonal `diag` (size n) and subdiagonal `off` (size n-1). Used for the
/// small T matrices produced by Lanczos.
SymmetricEigenResult TridiagonalEigen(const std::vector<double>& diag,
                                      const std::vector<double>& off,
                                      bool compute_vectors);

}  // namespace ctbus::linalg

#endif  // CTBUS_LINALG_DENSE_EIGEN_H_
