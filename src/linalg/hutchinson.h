// Hutchinson's stochastic trace estimator specialized to tr(exp(A)).
//
// tr(exp(A)) = E[v^T exp(A) v] for v with i.i.d. unit-variance entries
// (Equation 6/7 of the paper). Each quadratic form is evaluated with
// `steps`-iteration Lanczos quadrature, so one estimate costs
// O(probes * steps * nnz(A)).
//
// The `WithProbes` variant evaluates several matrices with the *same* probe
// vectors (common random numbers). CT-Bus relies on this to estimate tiny
// connectivity increments Delta(e) = lambda(G+e) - lambda(G): with shared
// probes the stochastic error largely cancels in the difference.
#ifndef CTBUS_LINALG_HUTCHINSON_H_
#define CTBUS_LINALG_HUTCHINSON_H_

#include <vector>

#include "linalg/matvec.h"
#include "linalg/rng.h"

namespace ctbus::linalg {

/// Draws `probes` Gaussian probe vectors of dimension `dim`.
/// Throws std::invalid_argument if probes < 1.
std::vector<std::vector<double>> MakeGaussianProbes(int dim, int probes,
                                                    Rng* rng);

/// Estimates tr(exp(A)) with `probes` fresh Gaussian probes and
/// `steps`-iteration Lanczos quadrature per probe.
/// Throws std::invalid_argument if probes < 1 (an empty average would be a
/// silent 0/0 NaN that poisons every cached Precompute entry built from it).
double EstimateTraceExp(const MatVec& a, int probes, int steps, Rng* rng);

/// Same estimator but with caller-supplied probes (common random numbers).
/// Throws std::invalid_argument if `probes` is empty (same 0/0 hazard).
double EstimateTraceExpWithProbes(
    const MatVec& a, const std::vector<std::vector<double>>& probes,
    int steps);

/// Bit-identical to EstimateTraceExpWithProbes, but runs every probe
/// through one LanczosExpQuadratureBatch call so each Lanczos step makes a
/// single fused traversal of the matrix (see MatVec::ApplyBatch) instead
/// of one traversal per probe. Throws std::invalid_argument on empty
/// `probes`.
double EstimateTraceExpBatched(
    const MatVec& a, const std::vector<std::vector<double>>& probes,
    int steps);

}  // namespace ctbus::linalg

#endif  // CTBUS_LINALG_HUTCHINSON_H_
