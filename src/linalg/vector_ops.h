// Elementary dense vector kernels shared by the Lanczos and Hutchinson code.
#ifndef CTBUS_LINALG_VECTOR_OPS_H_
#define CTBUS_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

#include "linalg/rng.h"

namespace ctbus::linalg {

/// Dot product <x, y>. Requires x.size() == y.size().
double Dot(const std::vector<double>& x, const std::vector<double>& y);

/// Euclidean norm ||x||_2.
double Norm2(const std::vector<double>& x);

/// y += alpha * x. Requires x.size() == y.size().
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

/// x *= alpha.
void Scale(double alpha, std::vector<double>* x);

/// Fills x with i.i.d. standard Gaussian entries drawn from rng.
void FillGaussian(Rng* rng, std::vector<double>* x);

/// Fills x with i.i.d. Rademacher (+/-1) entries drawn from rng.
void FillRademacher(Rng* rng, std::vector<double>* x);

/// Normalizes x to unit Euclidean norm; returns the original norm.
/// If ||x|| == 0 the vector is left unchanged and 0 is returned.
double Normalize(std::vector<double>* x);

}  // namespace ctbus::linalg

#endif  // CTBUS_LINALG_VECTOR_OPS_H_
