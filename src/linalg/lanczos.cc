#include "linalg/lanczos.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/dense_eigen.h"
#include "linalg/vector_ops.h"

namespace ctbus::linalg {

namespace {

// beta below this is treated as an invariant-subspace breakdown.
constexpr double kBreakdownTol = 1e-12;

}  // namespace

LanczosResult LanczosTridiagonalize(const MatVec& a,
                                    const std::vector<double>& v0,
                                    const LanczosOptions& options) {
  const int n = a.dim();
  assert(static_cast<int>(v0.size()) == n);
  assert(options.steps >= 1);
  const bool keep_basis = options.keep_basis || options.full_reorthogonalize;

  LanczosResult result;
  std::vector<double> v = v0;
  if (Normalize(&v) == 0.0) {
    // Zero start vector: T is the 1x1 zero matrix.
    result.alpha.push_back(0.0);
    result.broke_down = true;
    if (keep_basis) result.basis.push_back(v);
    return result;
  }

  std::vector<double> v_prev(n, 0.0);
  std::vector<double> w(n, 0.0);
  double beta_prev = 0.0;

  for (int j = 0; j < options.steps; ++j) {
    if (keep_basis) result.basis.push_back(v);
    a.Apply(v, &w);
    const double alpha = Dot(w, v);
    result.alpha.push_back(alpha);
    // w <- w - alpha v - beta_prev v_prev
    Axpy(-alpha, v, &w);
    if (j > 0) Axpy(-beta_prev, v_prev, &w);
    if (options.full_reorthogonalize) {
      // Two passes of classical Gram-Schmidt against the stored basis keep
      // the basis orthogonal to machine precision.
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& q : result.basis) {
          const double coef = Dot(w, q);
          Axpy(-coef, q, &w);
        }
      }
    }
    const double beta = Norm2(w);
    if (j + 1 == options.steps) break;
    if (beta < kBreakdownTol) {
      result.broke_down = true;
      break;
    }
    result.beta.push_back(beta);
    v_prev = v;
    v = w;
    Scale(1.0 / beta, &v);
    beta_prev = beta;
  }
  return result;
}

std::vector<double> LanczosExpApply(const MatVec& a,
                                    const std::vector<double>& v, int steps) {
  const int n = a.dim();
  const double v_norm = Norm2(v);
  std::vector<double> s(n, 0.0);
  if (v_norm == 0.0) return s;

  LanczosOptions options;
  options.steps = steps;
  options.keep_basis = true;
  const LanczosResult lanczos = LanczosTridiagonalize(a, v, options);
  const int t = static_cast<int>(lanczos.alpha.size());

  const SymmetricEigenResult tri =
      TridiagonalEigen(lanczos.alpha, lanczos.beta, /*compute_vectors=*/true);
  // exp(T) e1 = Z exp(diag(theta)) Z^T e1; coefficient of basis vector i is
  // sum_j exp(theta_j) * Z[0][j] * Z[i][j].
  std::vector<double> coeffs(t, 0.0);
  for (int j = 0; j < t; ++j) {
    const double weight =
        std::exp(tri.eigenvalues[j]) * tri.eigenvectors.At(0, j);
    for (int i = 0; i < t; ++i) {
      coeffs[i] += weight * tri.eigenvectors.At(i, j);
    }
  }
  for (int i = 0; i < t; ++i) {
    Axpy(v_norm * coeffs[i], lanczos.basis[i], &s);
  }
  return s;
}

double LanczosExpQuadrature(const MatVec& a, const std::vector<double>& v,
                            int steps) {
  const double v_norm = Norm2(v);
  if (v_norm == 0.0) return 0.0;

  LanczosOptions options;
  options.steps = steps;
  const LanczosResult lanczos = LanczosTridiagonalize(a, v, options);
  const int t = static_cast<int>(lanczos.alpha.size());

  const SymmetricEigenResult tri =
      TridiagonalEigen(lanczos.alpha, lanczos.beta, /*compute_vectors=*/true);
  double quad = 0.0;
  for (int j = 0; j < t; ++j) {
    const double z0 = tri.eigenvectors.At(0, j);
    quad += std::exp(tri.eigenvalues[j]) * z0 * z0;
  }
  return v_norm * v_norm * quad;
}

std::vector<double> LanczosExpQuadratureBatch(
    const MatVec& a, const std::vector<std::vector<double>>& vs, int steps) {
  const int n = a.dim();
  const int batch = static_cast<int>(vs.size());
  std::vector<double> results(batch, 0.0);
  if (batch == 0) return results;
  assert(steps >= 1);

  // SoA lane state: element (i, b) of V/W/V_prev lives at [i * batch + b].
  // Every per-lane reduction below walks i = 0..n-1 exactly like the
  // serial Dot/Norm2/Axpy/Scale kernels, so each lane's FP sequence is
  // identical to a standalone LanczosExpQuadrature run on that probe.
  std::vector<double> vcur(static_cast<std::size_t>(n) * batch, 0.0);
  std::vector<double> w(static_cast<std::size_t>(n) * batch, 0.0);
  std::vector<double> v_prev(static_cast<std::size_t>(n) * batch, 0.0);
  std::vector<char> active(batch, 1);
  std::vector<double> v_norm(batch, 0.0);
  std::vector<std::vector<double>> alphas(batch);
  std::vector<std::vector<double>> betas(batch);
  std::vector<double> beta_prev(batch, 0.0);

  int num_active = batch;
  for (int b = 0; b < batch; ++b) {
    assert(static_cast<int>(vs[b].size()) == n);
    for (int i = 0; i < n; ++i) vcur[static_cast<std::size_t>(i) * batch + b] = vs[b][i];
    // v_norm = Norm2(v): serial code computes it twice (once in the
    // quadrature wrapper, once inside Normalize) on identical inputs;
    // the value is the same either way.
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      const double x = vcur[static_cast<std::size_t>(i) * batch + b];
      acc += x * x;
    }
    v_norm[b] = std::sqrt(acc);
    if (v_norm[b] == 0.0) {
      // Serial path returns 0.0 without tridiagonalizing.
      active[b] = 0;
      --num_active;
      continue;
    }
    const double inv = 1.0 / v_norm[b];
    for (int i = 0; i < n; ++i) vcur[static_cast<std::size_t>(i) * batch + b] *= inv;
  }

  for (int j = 0; j < steps && num_active > 0; ++j) {
    // One fused traversal feeds every lane (inactive lanes' outputs are
    // simply ignored; their vectors stay finite, so no spurious FP traps).
    a.ApplyBatch(vcur.data(), batch, w.data());
    for (int b = 0; b < batch; ++b) {
      if (!active[b]) continue;
      // alpha = Dot(w, v)
      double alpha = 0.0;
      for (int i = 0; i < n; ++i) {
        const std::size_t at = static_cast<std::size_t>(i) * batch + b;
        alpha += w[at] * vcur[at];
      }
      alphas[b].push_back(alpha);
      // w <- w - alpha v  (Axpy(-alpha, v, &w))
      for (int i = 0; i < n; ++i) {
        const std::size_t at = static_cast<std::size_t>(i) * batch + b;
        w[at] += (-alpha) * vcur[at];
      }
      if (j > 0) {
        for (int i = 0; i < n; ++i) {
          const std::size_t at = static_cast<std::size_t>(i) * batch + b;
          w[at] += (-beta_prev[b]) * v_prev[at];
        }
      }
      double beta_acc = 0.0;
      for (int i = 0; i < n; ++i) {
        const double x = w[static_cast<std::size_t>(i) * batch + b];
        beta_acc += x * x;
      }
      const double beta = std::sqrt(beta_acc);
      if (j + 1 == steps) {
        active[b] = 0;
        --num_active;
        continue;
      }
      if (beta < kBreakdownTol) {
        // Invariant subspace: this lane's T is exact; stop extending it.
        active[b] = 0;
        --num_active;
        continue;
      }
      betas[b].push_back(beta);
      const double inv = 1.0 / beta;
      for (int i = 0; i < n; ++i) {
        const std::size_t at = static_cast<std::size_t>(i) * batch + b;
        v_prev[at] = vcur[at];
        vcur[at] = w[at] * inv;
      }
      beta_prev[b] = beta;
    }
  }

  for (int b = 0; b < batch; ++b) {
    if (v_norm[b] == 0.0) continue;
    const SymmetricEigenResult tri =
        TridiagonalEigen(alphas[b], betas[b], /*compute_vectors=*/true);
    const int t = static_cast<int>(alphas[b].size());
    double quad = 0.0;
    for (int j = 0; j < t; ++j) {
      const double z0 = tri.eigenvectors.At(0, j);
      quad += std::exp(tri.eigenvalues[j]) * z0 * z0;
    }
    results[b] = v_norm[b] * v_norm[b] * quad;
  }
  return results;
}

std::vector<double> TopEigenvalues(const MatVec& a, int k, int iters,
                                   Rng* rng) {
  const int n = a.dim();
  assert(k >= 0);
  if (k == 0 || n == 0) return {};
  k = std::min(k, n);
  iters = std::min(std::max(iters, k), n);

  std::vector<double> v0(n);
  FillGaussian(rng, &v0);
  LanczosOptions options;
  options.steps = iters;
  options.full_reorthogonalize = true;
  const LanczosResult lanczos = LanczosTridiagonalize(a, v0, options);
  SymmetricEigenResult tri =
      TridiagonalEigen(lanczos.alpha, lanczos.beta, /*compute_vectors=*/false);
  // Ritz values come out ascending; return the top k descending. If the
  // iteration broke down early we may have fewer than k Ritz values — pad
  // with the smallest (repeated eigenvalues on an invariant subspace).
  std::vector<double> top;
  const int available = static_cast<int>(tri.eigenvalues.size());
  for (int i = 0; i < k; ++i) {
    const int idx = available - 1 - i;
    top.push_back(tri.eigenvalues[std::max(idx, 0)]);
  }
  return top;
}

TopEigenpairsResult TopEigenpairs(const MatVec& a, int k, int iters,
                                  Rng* rng) {
  const int n = a.dim();
  TopEigenpairsResult result;
  assert(k >= 0);
  if (k == 0 || n == 0) return result;
  k = std::min(k, n);
  iters = std::min(std::max(iters, k), n);

  std::vector<double> v0(n);
  FillGaussian(rng, &v0);
  LanczosOptions options;
  options.steps = iters;
  options.full_reorthogonalize = true;
  const LanczosResult lanczos = LanczosTridiagonalize(a, v0, options);
  const SymmetricEigenResult tri =
      TridiagonalEigen(lanczos.alpha, lanczos.beta, /*compute_vectors=*/true);
  const int t = static_cast<int>(tri.eigenvalues.size());
  const int available = std::min(k, t);
  for (int i = 0; i < available; ++i) {
    const int idx = t - 1 - i;  // ascending -> take from the top
    result.eigenvalues.push_back(tri.eigenvalues[idx]);
    // Ritz vector: z = V * y.
    std::vector<double> ritz(n, 0.0);
    for (int row = 0; row < t; ++row) {
      Axpy(tri.eigenvectors.At(row, idx), lanczos.basis[row], &ritz);
    }
    Normalize(&ritz);
    result.eigenvectors.push_back(std::move(ritz));
  }
  return result;
}

double SpectralNormEstimate(const MatVec& a, int iters, Rng* rng) {
  const int n = a.dim();
  if (n == 0) return 0.0;
  std::vector<double> v0(n);
  FillGaussian(rng, &v0);
  LanczosOptions options;
  options.steps = std::min(iters, n);
  options.full_reorthogonalize = true;
  const LanczosResult lanczos = LanczosTridiagonalize(a, v0, options);
  const SymmetricEigenResult tri =
      TridiagonalEigen(lanczos.alpha, lanczos.beta, /*compute_vectors=*/false);
  if (tri.eigenvalues.empty()) return 0.0;
  return std::max(std::abs(tri.eigenvalues.front()),
                  std::abs(tri.eigenvalues.back()));
}

}  // namespace ctbus::linalg
