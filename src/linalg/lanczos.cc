#include "linalg/lanczos.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/dense_eigen.h"
#include "linalg/vector_ops.h"

namespace ctbus::linalg {

namespace {

// beta below this is treated as an invariant-subspace breakdown.
constexpr double kBreakdownTol = 1e-12;

}  // namespace

LanczosResult LanczosTridiagonalize(const MatVec& a,
                                    const std::vector<double>& v0,
                                    const LanczosOptions& options) {
  const int n = a.dim();
  assert(static_cast<int>(v0.size()) == n);
  assert(options.steps >= 1);
  const bool keep_basis = options.keep_basis || options.full_reorthogonalize;

  LanczosResult result;
  std::vector<double> v = v0;
  if (Normalize(&v) == 0.0) {
    // Zero start vector: T is the 1x1 zero matrix.
    result.alpha.push_back(0.0);
    result.broke_down = true;
    if (keep_basis) result.basis.push_back(v);
    return result;
  }

  std::vector<double> v_prev(n, 0.0);
  std::vector<double> w(n, 0.0);
  double beta_prev = 0.0;

  for (int j = 0; j < options.steps; ++j) {
    if (keep_basis) result.basis.push_back(v);
    a.Apply(v, &w);
    const double alpha = Dot(w, v);
    result.alpha.push_back(alpha);
    // w <- w - alpha v - beta_prev v_prev
    Axpy(-alpha, v, &w);
    if (j > 0) Axpy(-beta_prev, v_prev, &w);
    if (options.full_reorthogonalize) {
      // Two passes of classical Gram-Schmidt against the stored basis keep
      // the basis orthogonal to machine precision.
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& q : result.basis) {
          const double coef = Dot(w, q);
          Axpy(-coef, q, &w);
        }
      }
    }
    const double beta = Norm2(w);
    if (j + 1 == options.steps) break;
    if (beta < kBreakdownTol) {
      result.broke_down = true;
      break;
    }
    result.beta.push_back(beta);
    v_prev = v;
    v = w;
    Scale(1.0 / beta, &v);
    beta_prev = beta;
  }
  return result;
}

std::vector<double> LanczosExpApply(const MatVec& a,
                                    const std::vector<double>& v, int steps) {
  const int n = a.dim();
  const double v_norm = Norm2(v);
  std::vector<double> s(n, 0.0);
  if (v_norm == 0.0) return s;

  LanczosOptions options;
  options.steps = steps;
  options.keep_basis = true;
  const LanczosResult lanczos = LanczosTridiagonalize(a, v, options);
  const int t = static_cast<int>(lanczos.alpha.size());

  const SymmetricEigenResult tri =
      TridiagonalEigen(lanczos.alpha, lanczos.beta, /*compute_vectors=*/true);
  // exp(T) e1 = Z exp(diag(theta)) Z^T e1; coefficient of basis vector i is
  // sum_j exp(theta_j) * Z[0][j] * Z[i][j].
  std::vector<double> coeffs(t, 0.0);
  for (int j = 0; j < t; ++j) {
    const double weight =
        std::exp(tri.eigenvalues[j]) * tri.eigenvectors.At(0, j);
    for (int i = 0; i < t; ++i) {
      coeffs[i] += weight * tri.eigenvectors.At(i, j);
    }
  }
  for (int i = 0; i < t; ++i) {
    Axpy(v_norm * coeffs[i], lanczos.basis[i], &s);
  }
  return s;
}

double LanczosExpQuadrature(const MatVec& a, const std::vector<double>& v,
                            int steps) {
  const double v_norm = Norm2(v);
  if (v_norm == 0.0) return 0.0;

  LanczosOptions options;
  options.steps = steps;
  const LanczosResult lanczos = LanczosTridiagonalize(a, v, options);
  const int t = static_cast<int>(lanczos.alpha.size());

  const SymmetricEigenResult tri =
      TridiagonalEigen(lanczos.alpha, lanczos.beta, /*compute_vectors=*/true);
  double quad = 0.0;
  for (int j = 0; j < t; ++j) {
    const double z0 = tri.eigenvectors.At(0, j);
    quad += std::exp(tri.eigenvalues[j]) * z0 * z0;
  }
  return v_norm * v_norm * quad;
}

std::vector<double> TopEigenvalues(const MatVec& a, int k, int iters,
                                   Rng* rng) {
  const int n = a.dim();
  assert(k >= 0);
  if (k == 0 || n == 0) return {};
  k = std::min(k, n);
  iters = std::min(std::max(iters, k), n);

  std::vector<double> v0(n);
  FillGaussian(rng, &v0);
  LanczosOptions options;
  options.steps = iters;
  options.full_reorthogonalize = true;
  const LanczosResult lanczos = LanczosTridiagonalize(a, v0, options);
  SymmetricEigenResult tri =
      TridiagonalEigen(lanczos.alpha, lanczos.beta, /*compute_vectors=*/false);
  // Ritz values come out ascending; return the top k descending. If the
  // iteration broke down early we may have fewer than k Ritz values — pad
  // with the smallest (repeated eigenvalues on an invariant subspace).
  std::vector<double> top;
  const int available = static_cast<int>(tri.eigenvalues.size());
  for (int i = 0; i < k; ++i) {
    const int idx = available - 1 - i;
    top.push_back(tri.eigenvalues[std::max(idx, 0)]);
  }
  return top;
}

TopEigenpairsResult TopEigenpairs(const MatVec& a, int k, int iters,
                                  Rng* rng) {
  const int n = a.dim();
  TopEigenpairsResult result;
  assert(k >= 0);
  if (k == 0 || n == 0) return result;
  k = std::min(k, n);
  iters = std::min(std::max(iters, k), n);

  std::vector<double> v0(n);
  FillGaussian(rng, &v0);
  LanczosOptions options;
  options.steps = iters;
  options.full_reorthogonalize = true;
  const LanczosResult lanczos = LanczosTridiagonalize(a, v0, options);
  const SymmetricEigenResult tri =
      TridiagonalEigen(lanczos.alpha, lanczos.beta, /*compute_vectors=*/true);
  const int t = static_cast<int>(tri.eigenvalues.size());
  const int available = std::min(k, t);
  for (int i = 0; i < available; ++i) {
    const int idx = t - 1 - i;  // ascending -> take from the top
    result.eigenvalues.push_back(tri.eigenvalues[idx]);
    // Ritz vector: z = V * y.
    std::vector<double> ritz(n, 0.0);
    for (int row = 0; row < t; ++row) {
      Axpy(tri.eigenvectors.At(row, idx), lanczos.basis[row], &ritz);
    }
    Normalize(&ritz);
    result.eigenvectors.push_back(std::move(ritz));
  }
  return result;
}

double SpectralNormEstimate(const MatVec& a, int iters, Rng* rng) {
  const int n = a.dim();
  if (n == 0) return 0.0;
  std::vector<double> v0(n);
  FillGaussian(rng, &v0);
  LanczosOptions options;
  options.steps = std::min(iters, n);
  options.full_reorthogonalize = true;
  const LanczosResult lanczos = LanczosTridiagonalize(a, v0, options);
  const SymmetricEigenResult tri =
      TridiagonalEigen(lanczos.alpha, lanczos.beta, /*compute_vectors=*/false);
  if (tri.eigenvalues.empty()) return 0.0;
  return std::max(std::abs(tri.eigenvalues.front()),
                  std::abs(tri.eigenvalues.back()));
}

}  // namespace ctbus::linalg
