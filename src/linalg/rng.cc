#include "linalg/rng.h"

#include <cassert>
#include <cmath>

namespace ctbus::linalg {

namespace {

std::uint64_t SplitMix64(std::uint64_t* x) {
  std::uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(&s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextIndex(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(NextIndex(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller on two uniforms; u1 is kept away from zero.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Split() { return Rng((*this)()); }

}  // namespace ctbus::linalg
