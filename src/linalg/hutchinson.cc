#include "linalg/hutchinson.h"

#include <cassert>

#include "linalg/lanczos.h"
#include "linalg/vector_ops.h"

namespace ctbus::linalg {

std::vector<std::vector<double>> MakeGaussianProbes(int dim, int probes,
                                                    Rng* rng) {
  assert(probes >= 1);
  std::vector<std::vector<double>> out(probes, std::vector<double>(dim));
  for (auto& v : out) FillGaussian(rng, &v);
  return out;
}

double EstimateTraceExp(const MatVec& a, int probes, int steps, Rng* rng) {
  const auto probe_vectors = MakeGaussianProbes(a.dim(), probes, rng);
  return EstimateTraceExpWithProbes(a, probe_vectors, steps);
}

double EstimateTraceExpWithProbes(
    const MatVec& a, const std::vector<std::vector<double>>& probes,
    int steps) {
  assert(!probes.empty());
  double acc = 0.0;
  for (const auto& v : probes) {
    acc += LanczosExpQuadrature(a, v, steps);
  }
  return acc / static_cast<double>(probes.size());
}

}  // namespace ctbus::linalg
