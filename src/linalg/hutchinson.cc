#include "linalg/hutchinson.h"

#include <stdexcept>

#include "linalg/lanczos.h"
#include "linalg/vector_ops.h"

namespace ctbus::linalg {

std::vector<std::vector<double>> MakeGaussianProbes(int dim, int probes,
                                                    Rng* rng) {
  if (probes < 1) {
    throw std::invalid_argument("MakeGaussianProbes: probes must be >= 1");
  }
  std::vector<std::vector<double>> out(probes, std::vector<double>(dim));
  for (auto& v : out) FillGaussian(rng, &v);
  return out;
}

double EstimateTraceExp(const MatVec& a, int probes, int steps, Rng* rng) {
  const auto probe_vectors = MakeGaussianProbes(a.dim(), probes, rng);
  return EstimateTraceExpWithProbes(a, probe_vectors, steps);
}

double EstimateTraceExpWithProbes(
    const MatVec& a, const std::vector<std::vector<double>>& probes,
    int steps) {
  if (probes.empty()) {
    throw std::invalid_argument(
        "EstimateTraceExpWithProbes: empty probe set (0/0 average)");
  }
  double acc = 0.0;
  for (const auto& v : probes) {
    acc += LanczosExpQuadrature(a, v, steps);
  }
  return acc / static_cast<double>(probes.size());
}

double EstimateTraceExpBatched(
    const MatVec& a, const std::vector<std::vector<double>>& probes,
    int steps) {
  if (probes.empty()) {
    throw std::invalid_argument(
        "EstimateTraceExpBatched: empty probe set (0/0 average)");
  }
  const std::vector<double> quads =
      LanczosExpQuadratureBatch(a, probes, steps);
  // Same left-to-right accumulation as the serial estimator; each quad is
  // bit-identical, so the average is too.
  double acc = 0.0;
  for (const double q : quads) acc += q;
  return acc / static_cast<double>(probes.size());
}

}  // namespace ctbus::linalg
