// Frozen CSR (compressed sparse row) kernel for the estimator hot path.
//
// SymmetricSparseMatrix is optimized for the add/remove edge cycles of the
// CT-Bus search; its per-row std::vector storage costs one pointer chase
// per row on every matvec. CsrMatrix is the frozen counterpart: three
// contiguous arrays (row_ptr / col / value) built by
// SymmetricSparseMatrix::Freeze(), traversed by a blocked, unrolled Apply
// and a multi-RHS ApplyBatch that feeds every Hutchinson probe from ONE
// matrix traversal (the Lanczos matvec is memory-bandwidth-bound, so
// sharing the traversal across probes is the dominant win).
//
// Determinism contract: Freeze preserves the per-row entry order of the
// source matrix, Apply accumulates each row in that order through a single
// dependency chain, and ApplyBatch keeps each lane's accumulation in its
// own register — so CSR results are bit-identical to the adjacency-list
// Apply, lane by lane. This is what lets the batched estimator path swap
// in under the serving layer's bit-identity guarantees.
#ifndef CTBUS_LINALG_CSR_MATRIX_H_
#define CTBUS_LINALG_CSR_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matvec.h"

namespace ctbus::linalg {

class SymmetricSparseMatrix;

class CsrMatrix : public MatVec {
 public:
  CsrMatrix() = default;

  /// Builds a CSR copy of `a`, preserving per-row entry order.
  static CsrMatrix FromSparse(const SymmetricSparseMatrix& a);

  /// Re-freezes `a` into this matrix, reusing existing capacity (the
  /// estimator fast path freezes once per Estimate call, so the arrays are
  /// recycled instead of reallocated).
  void AssignFrom(const SymmetricSparseMatrix& a);

  int dim() const override { return n_; }

  /// Stored (directed) entries: each symmetric pair appears twice.
  std::int64_t num_values() const {
    return static_cast<std::int64_t>(col_.size());
  }

  /// y = A x, rows accumulated in stored order (single dependency chain,
  /// unrolled by 4 — no reassociation, so bit-identical to the
  /// adjacency-list Apply).
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;

  /// Y = A X for `batch` SoA-interleaved right-hand sides (see
  /// MatVec::ApplyBatch for the layout). One traversal of the matrix feeds
  /// all lanes; each lane accumulates independently in stored entry order.
  void ApplyBatch(const double* x, int batch, double* y) const override;

  /// Approximate resident footprint in bytes. Deterministic, O(1).
  std::size_t ApproxBytes() const {
    return sizeof(CsrMatrix) + row_ptr_.size() * sizeof(std::int64_t) +
           col_.size() * sizeof(int) + value_.size() * sizeof(double);
  }

 private:
  int n_ = 0;
  std::vector<std::int64_t> row_ptr_;  // size n_ + 1
  std::vector<int> col_;
  std::vector<double> value_;
};

}  // namespace ctbus::linalg

#endif  // CTBUS_LINALG_CSR_MATRIX_H_
