// Deterministic pseudo-random number generation for all stochastic components
// (Hutchinson probes, synthetic data generation, sampling experiments).
//
// Every stochastic routine in this library takes an explicit seed or an
// explicit `Rng&` so that tests and benchmarks are reproducible bit-for-bit.
#ifndef CTBUS_LINALG_RNG_H_
#define CTBUS_LINALG_RNG_H_

#include <cstdint>
#include <limits>

namespace ctbus::linalg {

/// xoshiro256** pseudo-random generator seeded via SplitMix64.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can drive
/// standard distributions, but the helpers below avoid the standard
/// distributions entirely to guarantee cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` using SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t NextIndex(std::uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Box-Muller; deterministic across platforms).
  double NextGaussian();

  /// Bernoulli draw with success probability p.
  bool NextBool(double p);

  /// Returns a fresh generator whose seed is derived from this one's stream;
  /// used to give independent substreams to parallel components.
  Rng Split();

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace ctbus::linalg

#endif  // CTBUS_LINALG_RNG_H_
