#include "eval/transfer_metrics.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <unordered_set>

#include "graph/graph.h"
#include "graph/shortest_path.h"

namespace ctbus::eval {

namespace {

// Route-stop incidence: BFS over the bipartite stop/route graph yields
// minimum transfers: hops alternate stop -> route -> stop, so a trip using
// r route-nodes costs r - 1 transfers.
struct RouteStopIncidence {
  std::vector<std::vector<int>> routes_of_stop;
  std::vector<std::vector<int>> stops_of_route;
};

RouteStopIncidence BuildIncidence(const graph::TransitNetwork& transit) {
  RouteStopIncidence inc;
  inc.routes_of_stop.resize(transit.num_stops());
  inc.stops_of_route.resize(transit.num_routes());
  for (int r = 0; r < transit.num_routes(); ++r) {
    if (!transit.route(r).active) continue;
    std::unordered_set<int> seen;
    for (int s : transit.route(r).stops) {
      if (seen.insert(s).second) {
        inc.routes_of_stop[s].push_back(r);
        inc.stops_of_route[r].push_back(s);
      }
    }
  }
  return inc;
}

// Multi-source BFS over routes: returns per-stop minimum number of boarded
// routes (1 = direct ride), or -1 if unreachable.
std::vector<int> MinBoardings(const RouteStopIncidence& inc, int from_stop) {
  const int num_routes = static_cast<int>(inc.stops_of_route.size());
  std::vector<int> stop_cost(inc.routes_of_stop.size(), -1);
  std::vector<bool> route_seen(num_routes, false);
  std::queue<int> route_frontier;
  stop_cost[from_stop] = 0;
  for (int r : inc.routes_of_stop[from_stop]) {
    route_seen[r] = true;
    route_frontier.push(r);
  }
  int boardings = 1;
  while (!route_frontier.empty()) {
    std::queue<int> next_frontier;
    while (!route_frontier.empty()) {
      const int r = route_frontier.front();
      route_frontier.pop();
      for (int s : inc.stops_of_route[r]) {
        if (stop_cost[s] < 0) {
          stop_cost[s] = boardings;
          for (int nr : inc.routes_of_stop[s]) {
            if (!route_seen[nr]) {
              route_seen[nr] = true;
              next_frontier.push(nr);
            }
          }
        }
      }
    }
    route_frontier = std::move(next_frontier);
    ++boardings;
  }
  return stop_cost;
}

// Stop-level distance graph of the active transit network; optionally
// augmented with extra edges (the new route).
graph::Graph BuildStopGraph(const graph::TransitNetwork& transit,
                            const core::EdgeUniverse* universe,
                            const std::vector<int>* extra_edges) {
  graph::Graph g;
  for (int s = 0; s < transit.num_stops(); ++s) {
    g.AddVertex(transit.stop(s).position);
  }
  for (int e = 0; e < transit.num_edges(); ++e) {
    if (!transit.EdgeActive(e)) continue;
    const auto& edge = transit.edge(e);
    g.AddEdge(edge.u, edge.v, edge.length);
  }
  if (universe != nullptr && extra_edges != nullptr) {
    for (int e : *extra_edges) {
      const auto& edge = universe->edge(e);
      g.AddEdge(edge.u, edge.v, edge.length);  // no-op if already present
    }
  }
  return g;
}

}  // namespace

int MinTransfers(const graph::TransitNetwork& transit, int from_stop,
                 int to_stop) {
  if (from_stop == to_stop) return 0;
  const RouteStopIncidence inc = BuildIncidence(transit);
  const auto cost = MinBoardings(inc, from_stop);
  if (cost[to_stop] <= 0) return cost[to_stop] == 0 ? 0 : -1;
  return cost[to_stop] - 1;
}

TransferMetrics EvaluateRoute(const graph::TransitNetwork& transit,
                              const core::EdgeUniverse& universe,
                              const std::vector<int>& route_stops,
                              const std::vector<int>& route_edges) {
  TransferMetrics metrics;
  if (route_stops.size() < 2) return metrics;

  // Crossed routes: existing routes sharing a stop with mu.
  std::unordered_set<int> crossed;
  for (int s : route_stops) {
    for (int r : transit.RoutesAtStop(s)) crossed.insert(r);
  }
  metrics.crossed_routes = static_cast<int>(crossed.size());

  // Transfers in the old network, averaged over ordered pairs.
  const RouteStopIncidence inc = BuildIncidence(transit);
  double transfer_sum = 0.0;
  int transfer_pairs = 0;
  for (int from : route_stops) {
    const auto cost = MinBoardings(inc, from);
    for (int to : route_stops) {
      if (to == from) continue;
      if (cost[to] < 0) {
        ++metrics.unreachable_pairs;
      } else {
        transfer_sum += std::max(0, cost[to] - 1);
        ++transfer_pairs;
      }
    }
  }
  if (transfer_pairs > 0) {
    metrics.avg_transfers_avoided = transfer_sum / transfer_pairs;
  }

  // Distance ratio zeta (Equation 13): old distance / new distance.
  const graph::Graph old_graph = BuildStopGraph(transit, nullptr, nullptr);
  const graph::Graph new_graph =
      BuildStopGraph(transit, &universe, &route_edges);
  double ratio_sum = 0.0;
  int ratio_pairs = 0;
  for (int from : route_stops) {
    const auto old_tree = graph::Dijkstra(old_graph, from);
    const auto new_tree = graph::Dijkstra(new_graph, from);
    for (int to : route_stops) {
      if (to == from) continue;
      const double old_dist = old_tree.dist[to];
      const double new_dist = new_tree.dist[to];
      if (old_dist == std::numeric_limits<double>::infinity() ||
          new_dist <= 0.0) {
        continue;
      }
      ratio_sum += old_dist / new_dist;
      ++ratio_pairs;
    }
  }
  if (ratio_pairs > 0) metrics.distance_ratio = ratio_sum / ratio_pairs;
  return metrics;
}

}  // namespace ctbus::eval
