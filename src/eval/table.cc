#include "eval/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <iomanip>

namespace ctbus::eval {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::Int(long long value) { return std::to_string(value); }

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ctbus::eval
