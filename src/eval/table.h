// Fixed-width text table printer used by the benchmark harness to emit the
// paper's tables and figure series in a uniform, diff-friendly format.
#ifndef CTBUS_EVAL_TABLE_H_
#define CTBUS_EVAL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace ctbus::eval {

/// A simple column-aligned table. All rows must have the same number of
/// cells as the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Formats a double with `precision` digits after the point.
  static std::string Num(double value, int precision = 3);
  static std::string Int(long long value);

  /// Renders with single-space-padded columns and a separator rule.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ctbus::eval

#endif  // CTBUS_EVAL_TABLE_H_
