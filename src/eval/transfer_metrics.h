// Transfer-convenience metrics of Section 7.2.2 (Table 6, right half):
//  * #Transfer avoided — average number of transfers trips between stops of
//    the new route needed in the OLD network (the new route makes them 0);
//  * Distance ratio zeta(mu) (Equation 13) — average ratio of old-network
//    over new-network shortest-path travel distance across stop pairs;
//  * #Crossed routes — existing routes sharing at least one stop with mu.
#ifndef CTBUS_EVAL_TRANSFER_METRICS_H_
#define CTBUS_EVAL_TRANSFER_METRICS_H_

#include <vector>

#include "core/edge_universe.h"
#include "graph/transit_network.h"

namespace ctbus::eval {

struct TransferMetrics {
  /// Average minimum transfer count in the old network over reachable
  /// ordered stop pairs of the route.
  double avg_transfers_avoided = 0.0;
  /// zeta(mu) >= 1: old shortest distance / new shortest distance,
  /// averaged over reachable ordered pairs.
  double distance_ratio = 1.0;
  /// Existing active routes sharing >= 1 stop with the new route.
  int crossed_routes = 0;
  /// Ordered stop pairs skipped because the old network cannot connect
  /// them at all (the new route creates brand-new reachability).
  int unreachable_pairs = 0;
};

/// Evaluates a planned route, given as its stop sequence and universe edge
/// ids, against the existing transit network.
TransferMetrics EvaluateRoute(const graph::TransitNetwork& transit,
                              const core::EdgeUniverse& universe,
                              const std::vector<int>& route_stops,
                              const std::vector<int>& route_edges);

/// Minimum number of transfers between two stops riding only existing
/// routes (0 = one ride, no transfer). Returns -1 if unreachable.
int MinTransfers(const graph::TransitNetwork& transit, int from_stop,
                 int to_stop);

}  // namespace ctbus::eval

#endif  // CTBUS_EVAL_TRANSFER_METRICS_H_
