#include "service/planning_service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/baselines.h"
#include "core/timing.h"
#include "gen/datasets.h"
#include "io/snapshot.h"

namespace ctbus::service {

using core::Stopwatch;

namespace {

/// Latency histogram names, phase x priority class. Stable API.
const char* const kPhaseNames[2][5] = {
    {"service.latency.queue.interactive",
     "service.latency.precompute.interactive",
     "service.latency.context.interactive",
     "service.latency.plan.interactive",
     "service.latency.total.interactive"},
    {"service.latency.queue.sweep", "service.latency.precompute.sweep",
     "service.latency.context.sweep", "service.latency.plan.sweep",
     "service.latency.total.sweep"},
};

/// The batch identity of a request: everything its precompute resolution
/// depends on, with snapshot_version taken *as submitted* (0 = "latest"
/// stays 0, so only requests that will resolve "latest" together group
/// together; pinned versions only group with the same pin).
PrecomputeKey BatchKeyOf(const PlanRequest& request) {
  return MakePrecomputeKey(request.dataset, request.snapshot_version,
                           request.options);
}

}  // namespace

PlanningService::PlanningService(const ServiceOptions& options)
    : warm_start_precompute_(options.warm_start_precompute),
      max_warm_start_depth_(std::max(1, options.max_warm_start_depth)),
      default_retention_(options.retention),
      metrics_enabled_(options.enable_metrics),
      trace_(options.trace_capacity, options.enable_tracing),
      cache_(options.cache_capacity, options.cache_max_bytes,
             options.cache_spill_dir),
      queue_capacity_(std::max<std::size_t>(1, options.queue_capacity)),
      max_batch_size_(std::max<std::size_t>(1, options.max_batch_size)),
      overflow_policy_(options.overflow_policy),
      paused_(options.start_paused) {
  if (metrics_enabled_) {
    // Resolve every instrument once; the hot path records through these
    // raw pointers without ever touching the registry mutex again.
    counters_.submitted = metrics_.GetCounter("service.submitted");
    counters_.completed = metrics_.GetCounter("service.completed");
    counters_.rejected = metrics_.GetCounter("service.rejected");
    counters_.precomputes_from_scratch =
        metrics_.GetCounter("service.precompute.from_scratch");
    counters_.precomputes_derived =
        metrics_.GetCounter("service.precompute.derived");
    counters_.batches = metrics_.GetCounter("service.batch.batches");
    counters_.batched_requests =
        metrics_.GetCounter("service.batch.batched_requests");
    counters_.commits = metrics_.GetCounter("service.commit.total");
    counters_.async_commits = metrics_.GetCounter("service.commit.async");
    counters_.snapshots_pruned =
        metrics_.GetCounter("service.retention.snapshots_pruned");
    counters_.lineage_trimmed =
        metrics_.GetCounter("service.retention.lineage_trimmed");
    for (int p = 0; p < 2; ++p) {
      latency_[p].queue = metrics_.GetHistogram(kPhaseNames[p][0]);
      latency_[p].precompute = metrics_.GetHistogram(kPhaseNames[p][1]);
      latency_[p].context = metrics_.GetHistogram(kPhaseNames[p][2]);
      latency_[p].plan = metrics_.GetHistogram(kPhaseNames[p][3]);
      latency_[p].total = metrics_.GetHistogram(kPhaseNames[p][4]);
    }
  }
  int threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads_per_shard_ = threads;
  core::MutexLock lock(commit_mu_);
  commit_worker_ = std::thread([this] { CommitLoop(); });
}

PlanningService::~PlanningService() { Shutdown(); }

void PlanningService::RegisterDataset(const std::string& name,
                                      graph::RoadNetwork road,
                                      graph::TransitNetwork transit) {
  RegisterDataset(name, std::move(road), std::move(transit),
                  default_retention_);
}

void PlanningService::RegisterDataset(
    const std::string& name, graph::RoadNetwork road,
    graph::TransitNetwork transit,
    const SnapshotRetentionPolicy& retention) {
  auto shard = std::make_shared<Shard>(std::make_shared<SnapshotStore>(
      std::move(road), std::move(transit)));
  shard->retention = retention;
  if (metrics_enabled_) {
    shard->queue_depth_gauge =
        metrics_.GetGauge("service.shard." + name + ".queue_depth");
  }
  core::MutexLock lock(datasets_mu_);
  if (shutting_down_.load()) {
    throw std::runtime_error("RegisterDataset after Shutdown");
  }
  if (shards_.count(name) > 0) {
    throw std::invalid_argument("RegisterDataset: duplicate name " + name);
  }
  Shard* raw = shard.get();
  {
    // The shard is not published yet, but the freshly spawned workers
    // already reference it; hold its mutex so the spawn bookkeeping is
    // ordered before any worker's first dequeue.
    core::MutexLock shard_lock(shard->mu);
    shard->live_workers = threads_per_shard_;
    shard->workers.reserve(threads_per_shard_);
    for (int i = 0; i < threads_per_shard_; ++i) {
      const int worker_id = next_worker_id_.fetch_add(1);
      shard->workers.emplace_back(
          [this, raw, worker_id] { WorkerLoop(raw, worker_id); });
    }
  }
  shards_.emplace(name, std::move(shard));
}

void PlanningService::RegisterPreset(const std::string& name, double scale) {
  gen::Dataset dataset = gen::MakeDatasetByName(name, scale);
  RegisterDataset(name, std::move(dataset.road), std::move(dataset.transit));
}

bool PlanningService::HasDataset(const std::string& name) const {
  core::MutexLock lock(datasets_mu_);
  return shards_.count(name) > 0;
}

std::vector<std::string> PlanningService::DatasetNames() const {
  core::MutexLock lock(datasets_mu_);
  std::vector<std::string> names;
  names.reserve(shards_.size());
  for (const auto& [name, shard] : shards_) names.push_back(name);
  return names;
}

std::shared_ptr<PlanningService::Shard> PlanningService::FindShard(
    const std::string& dataset) const {
  core::MutexLock lock(datasets_mu_);
  const auto it = shards_.find(dataset);
  if (it == shards_.end()) {
    throw std::invalid_argument("unknown dataset: " + dataset);
  }
  return it->second;
}

std::shared_ptr<SnapshotStore> PlanningService::Store(
    const std::string& dataset) const {
  return FindShard(dataset)->store;
}

std::uint64_t PlanningService::LatestVersion(
    const std::string& dataset) const {
  return Store(dataset)->latest_version();
}

SnapshotPtr PlanningService::Snapshot(const std::string& dataset,
                                      std::uint64_t version) const {
  const auto store = Store(dataset);
  return version == 0 ? store->Latest() : store->Get(version);
}

void PlanningService::Start() {
  if (!paused_.exchange(false)) return;
  std::vector<std::shared_ptr<Shard>> shards;
  {
    core::MutexLock lock(datasets_mu_);
    for (const auto& [name, shard] : shards_) shards.push_back(shard);
  }
  for (const auto& shard : shards) {
    // Empty critical section: a worker that read paused_ == true inside
    // its wait predicate either holds mu (we wait for it) or is about to
    // re-check after our notify. Never signal a cv without this handshake.
    { core::MutexLock lock(shard->mu); }
    shard->not_empty.NotifyAll();
  }
}

std::future<ServiceResult> PlanningService::Submit(PlanRequest request) {
  const auto shard = FindShard(request.dataset);
  Task task;
  task.request = std::move(request);
  task.submit_time = std::chrono::steady_clock::now();
  if (task.request.priority == Priority::kSweep) {
    task.batch_key = BatchKeyOf(task.request);  // outside the shard lock
  }
  if (trace_.enabled()) {
    task.trace_id = trace_.NextTraceId();
    task.submit_trace_offset = trace_.Now();
  }
  std::future<ServiceResult> future = task.promise.get_future();
  // Count the submission before the task becomes visible to workers, so
  // completed can never be observed ahead of submitted.
  {
    core::MutexLock lock(stats_mu_);
    ++service_stats_.submitted;
  }
  {
    core::MutexLock lock(shard->mu);
    if (overflow_policy_ == OverflowPolicy::kReject &&
        shard->queued() >= queue_capacity_ && !shutting_down_.load()) {
      lock.Unlock();
      if (metrics_enabled_) counters_.rejected->Add();
      core::MutexLock stats_lock(stats_mu_);
      --service_stats_.submitted;
      ++service_stats_.rejected;
      throw std::runtime_error("PlanningService: shard queue full for " +
                               task.request.dataset);
    }
    while (!shutting_down_.load() && shard->queued() >= queue_capacity_) {
      shard->not_full.Wait(shard->mu);
    }
    if (shutting_down_.load()) {
      lock.Unlock();
      core::MutexLock stats_lock(stats_mu_);
      --service_stats_.submitted;
      throw std::runtime_error("PlanningService: Submit after Shutdown");
    }
    // Pin an explicitly requested version against retention while the
    // task waits in the queue ("latest" needs no pin — the latest version
    // is never pruned). Released by ExecuteBatch.
    if (task.request.snapshot_version != 0) {
      task.pinned_version = task.request.snapshot_version;
      ++shard->version_pins[task.pinned_version];
    }
    if (task.request.priority == Priority::kInteractive) {
      shard->interactive.push_back(std::move(task));
    } else {
      shard->sweep.push_back(std::move(task));
    }
    if (metrics_enabled_) {
      shard->queue_depth_gauge->Set(
          static_cast<std::int64_t>(shard->queued()));
    }
  }
  // The metrics counter is monotonic, so it is only bumped after the
  // enqueue is irrevocable — the reject/shutdown paths above never touch
  // it — which is what lets it reconcile exactly with ServiceStats (whose
  // decrement-on-failure pattern a monotonic counter cannot mirror).
  if (metrics_enabled_) counters_.submitted->Add();
  shard->not_empty.NotifyOne();
  return future;
}

ServiceResult PlanningService::Plan(PlanRequest request) {
  return Submit(std::move(request)).get();
}

std::uint64_t PlanningService::Commit(const ServiceResult& result) {
  return CommitNow(result);
}

std::future<std::uint64_t> PlanningService::CommitAsync(ServiceResult result) {
  CommitTask task;
  task.result = std::move(result);
  // Pin the planned-against version while the commit waits in the
  // pipeline: retention passes triggered by earlier commits must not
  // prune the snapshot this result's edge ids map through.
  task.shard = FindShard(task.result.request.dataset);
  task.pinned_version = task.result.stats.snapshot_version;
  if (task.pinned_version != 0) {
    core::MutexLock lock(task.shard->mu);
    ++task.shard->version_pins[task.pinned_version];
  }
  std::future<std::uint64_t> future = task.promise.get_future();
  {
    core::MutexLock lock(commit_mu_);
    if (commit_shutdown_) {
      UnpinVersion(task.shard.get(), task.pinned_version);
      throw std::runtime_error("PlanningService: CommitAsync after Shutdown");
    }
    commit_queue_.push_back(std::move(task));
  }
  commit_cv_.NotifyOne();
  return future;
}

std::uint64_t PlanningService::CommitNow(const ServiceResult& result) {
  // The commit span reuses the request's trace id (when it was traced), so
  // a request's whole lifecycle joins on one id in the trace dump.
  const bool traced = trace_.enabled() && result.stats.trace_id != 0;
  const double commit_start = traced ? trace_.Now() : 0.0;
  const PlanRequest& request = result.request;
  const auto shard = FindShard(request.dataset);
  const auto store = shard->store;
  const std::uint64_t version = result.stats.snapshot_version;
  const SnapshotPtr snapshot = store->Get(version);
  // The universe that maps the result's edge ids back to stop pairs lives
  // in the precompute for (dataset, version, tau); typically still hot.
  PrecomputeCache::PrecomputePtr precompute;
  if (snapshot != nullptr) {
    precompute = ResolvePrecompute(*store, request.dataset, *snapshot,
                                   request.options,
                                   /*cache_hit=*/nullptr,
                                   /*derived=*/nullptr);
  } else {
    // The planned-against version was pruned by retention. Committing
    // needs only the universe the plan was computed in (CommitRoute
    // applies on top of latest), so a still-cached precompute suffices.
    precompute = cache_.Peek(
        MakePrecomputeKey(request.dataset, version, request.options));
    if (precompute == nullptr) {
      throw std::invalid_argument("Commit: unknown snapshot version");
    }
  }
  // Commit on top of *latest* (base 0), not the version the plan was
  // computed against: sequential commits of plans from one snapshot must
  // stack, not clobber each other. The universe still comes from the
  // planned-against version — that is what maps the result's edge ids.
  const std::uint64_t new_version =
      store->CommitRoute(result.plan, precompute->universe,
                         /*base_version=*/0);
  ApplyRetention(request.dataset, shard.get());
  if (metrics_enabled_) counters_.commits->Add();
  if (traced) {
    obs::Span span;
    span.trace_id = result.stats.trace_id;
    span.name = "commit";
    span.detail = request.dataset;
    span.start_seconds = commit_start;
    span.duration_seconds = trace_.Now() - commit_start;
    trace_.Record(std::move(span));
  }
  return new_version;
}

void PlanningService::CommitLoop() {
  for (;;) {
    CommitTask task;
    {
      core::MutexLock lock(commit_mu_);
      while (!commit_shutdown_ && commit_queue_.empty()) {
        commit_cv_.Wait(commit_mu_);
      }
      if (commit_queue_.empty()) return;  // shutting down and drained
      task = std::move(commit_queue_.front());
      commit_queue_.pop_front();
    }
    try {
      const std::uint64_t version = CommitNow(task.result);
      UnpinVersion(task.shard.get(), task.pinned_version);
      if (metrics_enabled_) counters_.async_commits->Add();
      {
        core::MutexLock lock(stats_mu_);
        ++service_stats_.async_commits;
      }
      task.promise.set_value(version);
    } catch (...) {
      UnpinVersion(task.shard.get(), task.pinned_version);
      task.promise.set_exception(std::current_exception());
    }
  }
}

void PlanningService::UnpinVersionLocked(Shard* shard,
                                         std::uint64_t version) {
  if (version == 0) return;
  const auto it = shard->version_pins.find(version);
  if (it == shard->version_pins.end()) return;
  if (--it->second <= 0) shard->version_pins.erase(it);
}

void PlanningService::UnpinVersion(Shard* shard, std::uint64_t version) {
  if (shard == nullptr || version == 0) return;
  core::MutexLock lock(shard->mu);
  UnpinVersionLocked(shard, version);
}

void PlanningService::ApplyRetention(const std::string& dataset,
                                     Shard* shard) {
  const SnapshotRetentionPolicy& policy = shard->retention;
  if (policy.keep_latest == 0 && policy.max_bytes == 0) return;
  // Protected set: versions pinned by queued requests / pending commits,
  // plus every version with a resident cache entry for this dataset (a
  // ready entry is a live warm-start donor whose lineage must survive;
  // an in-flight entry is a derive in progress whose target version's
  // lineage walk is happening right now). The cache keys are read first
  // (cache lock), then shard->mu is held ACROSS the store call: pins are
  // taken under shard->mu, so a concurrent Submit/CommitAsync pin either
  // lands before the pass (and is protected) or after it (and sees the
  // post-prune store, where a pruned version fails like any unknown
  // version). Holding shard->mu while taking the store's index lock is
  // safe: no path acquires them in the other order.
  std::vector<std::uint64_t> protected_versions;
  for (const PrecomputeKey& key : cache_.KeysByRecency()) {
    if (key.dataset == dataset) {
      protected_versions.push_back(key.snapshot_version);
    }
  }
  SnapshotStore::RetentionResult result;
  {
    core::MutexLock lock(shard->mu);
    protected_versions.reserve(protected_versions.size() +
                               shard->version_pins.size());
    for (const auto& [version, pins] : shard->version_pins) {
      protected_versions.push_back(version);
    }
    result = shard->store->ApplyRetention(policy, protected_versions);
    shard->snapshots_pruned += result.versions_pruned;
    shard->lineage_trimmed += result.lineage_trimmed;
  }
  if (result.versions_pruned == 0 && result.lineage_trimmed == 0) return;
  if (metrics_enabled_) {
    counters_.snapshots_pruned->Add(result.versions_pruned);
    counters_.lineage_trimmed->Add(result.lineage_trimmed);
  }
  core::MutexLock lock(stats_mu_);
  service_stats_.snapshots_pruned += result.versions_pruned;
  service_stats_.lineage_trimmed += result.lineage_trimmed;
}

PrecomputeCache::PrecomputePtr PlanningService::ResolvePrecompute(
    SnapshotStore& store, const std::string& dataset,
    const NetworkSnapshot& snapshot, const core::CtBusOptions& options,
    bool* cache_hit, bool* derived) {
  const PrecomputeKey key =
      MakePrecomputeKey(dataset, snapshot.version, options);
  bool was_derived = false;
  bool was_hit = false;
  const auto precompute = cache_.GetOrCompute(
      key,
      [&]() -> core::Precompute {
        if (warm_start_precompute_) {
          // Donor choice: a from-scratch (depth-0) precompute anchors the
          // derivation exactly, so prefer the nearest one even over a
          // closer derived donor; deriving from derived donors is allowed
          // up to max_warm_start_depth_ so stochastic carry error cannot
          // compound without bound. ReadySiblings sorts by descending
          // version; DeltaBetween rejects non-ancestors.
          const auto siblings = cache_.ReadySiblings(key);
          for (const bool scratch_only : {true, false}) {
            for (const auto& [donor_version, donor] : siblings) {
              if (donor_version >= snapshot.version) continue;
              const int depth = donor->stats.derivation_depth;
              if (scratch_only ? depth != 0
                               : depth >= max_warm_start_depth_) {
                continue;
              }
              const auto delta =
                  store.DeltaBetween(donor_version, snapshot.version);
              if (!delta.has_value()) continue;
              was_derived = true;
              return core::PlanningContext::DerivePrecompute(
                  *snapshot.road, *snapshot.transit, options, *donor,
                  *delta);
            }
          }
        }
        return core::PlanningContext::RunPrecompute(
            *snapshot.road, *snapshot.transit, options);
      },
      &was_hit,
      // Lazy content fingerprint for the disk-spill path: snapshot
      // version counters restart at 1 every process start, so spill
      // files are validated against the network bytes themselves. Only
      // evaluated on a miss with spill enabled — never on the hit path.
      [&snapshot] {
        return io::NetworkFingerprint(*snapshot.road, *snapshot.transit);
      });
  if (cache_hit != nullptr) *cache_hit = was_hit;
  if (derived != nullptr) *derived = was_derived;
  if (!was_hit) {
    if (metrics_enabled_) {
      (was_derived ? counters_.precomputes_derived
                   : counters_.precomputes_from_scratch)
          ->Add();
    }
    core::MutexLock lock(stats_mu_);
    if (was_derived) {
      ++service_stats_.precomputes_derived;
    } else {
      ++service_stats_.precomputes_from_scratch;
    }
  }
  return precompute;
}

PlanningService::ServiceStats PlanningService::service_stats() const {
  core::MutexLock lock(stats_mu_);
  return service_stats_;
}

PlanningService::DatasetMemoryStats PlanningService::dataset_memory_stats(
    const std::string& dataset) const {
  const auto shard = FindShard(dataset);
  DatasetMemoryStats stats;
  stats.resident_versions = shard->store->num_versions();
  stats.snapshot_bytes = shard->store->ApproxBytes();
  stats.lineage_records = shard->store->num_lineage_records();
  core::MutexLock lock(shard->mu);
  stats.pinned_versions = shard->version_pins.size();
  stats.snapshots_pruned = shard->snapshots_pruned;
  stats.lineage_trimmed = shard->lineage_trimmed;
  return stats;
}

void PlanningService::RecordRequestLatency(Priority priority,
                                           const RequestStats& stats,
                                           bool batch_leader) {
  if (!metrics_enabled_) return;
  PhaseHistograms& phases = latency_[static_cast<int>(priority)];
  phases.queue->Record(stats.queue_seconds);
  if (batch_leader) phases.precompute->Record(stats.precompute_seconds);
  phases.context->Record(stats.context_seconds);
  phases.plan->Record(stats.plan_seconds);
  phases.total->Record(stats.queue_seconds + stats.precompute_seconds +
                       stats.context_seconds + stats.plan_seconds);
}

obs::MetricsSnapshot PlanningService::MetricsSnapshot() const {
  obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  // Always-on read-time views: the cache and the snapshot stores keep
  // their own exact accounting, so these need no hot-path instruments.
  const PrecomputeCache::Stats cache = cache_.stats();
  snapshot.counters.emplace_back("cache.evicted_bytes", cache.evicted_bytes);
  snapshot.counters.emplace_back("cache.evictions", cache.evictions);
  snapshot.counters.emplace_back("cache.hits", cache.hits);
  snapshot.counters.emplace_back("cache.misses", cache.misses);
  snapshot.gauges.emplace_back(
      "cache.resident_bytes", static_cast<std::int64_t>(cache.resident_bytes));
  std::vector<std::string> names = DatasetNames();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const DatasetMemoryStats stats = dataset_memory_stats(name);
    const std::string prefix = "dataset." + name + ".";
    snapshot.counters.emplace_back(prefix + "retention.lineage_trimmed",
                                   stats.lineage_trimmed);
    snapshot.counters.emplace_back(prefix + "retention.snapshots_pruned",
                                   stats.snapshots_pruned);
    snapshot.gauges.emplace_back(
        prefix + "snapshot.bytes",
        static_cast<std::int64_t>(stats.snapshot_bytes));
    snapshot.gauges.emplace_back(
        prefix + "snapshot.lineage_records",
        static_cast<std::int64_t>(stats.lineage_records));
    snapshot.gauges.emplace_back(
        prefix + "snapshot.pinned_versions",
        static_cast<std::int64_t>(stats.pinned_versions));
    snapshot.gauges.emplace_back(
        prefix + "snapshot.resident_versions",
        static_cast<std::int64_t>(stats.resident_versions));
  }
  // Restore the registry snapshot's deterministic-order contract after the
  // merge (names are unique across sources: distinct prefixes).
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  return snapshot;
}

void PlanningService::WriteMetricsJson(std::ostream& out) const {
  obs::WriteMetricsJson(MetricsSnapshot(), out);
}

int PlanningService::num_workers() const { return next_worker_id_.load(); }

void PlanningService::Shutdown() {
  // Wake every shard. The store-then-lock-then-notify handshake guarantees
  // a waiter either sees shutting_down_ or has not yet evaluated its
  // predicate (it holds mu while doing so).
  shutting_down_.store(true);
  std::vector<std::shared_ptr<Shard>> shards;
  {
    core::MutexLock lock(datasets_mu_);
    for (const auto& [name, shard] : shards_) shards.push_back(shard);
  }
  for (const auto& shard : shards) {
    // Claim the worker threads under the lock so concurrent Shutdown calls
    // (e.g. an explicit call racing the destructor) each join a disjoint —
    // possibly empty — set instead of double-joining the same threads.
    std::vector<std::thread> claimed;
    {
      core::MutexLock lock(shard->mu);
      claimed.swap(shard->workers);
    }
    shard->not_empty.NotifyAll();
    shard->not_full.NotifyAll();
    for (std::thread& worker : claimed) {
      if (worker.joinable()) worker.join();
    }
    // A caller that claimed no threads (another Shutdown got there first)
    // must still not return until every worker has left WorkerLoop —
    // otherwise the destructor could tear members down under a live worker.
    core::MutexLock lock(shard->mu);
    while (shard->live_workers != 0) shard->workers_done.Wait(shard->mu);
  }
  // Drain the commit pipeline after the plan queues: workers are gone, so
  // no new CommitAsync producer is racing the drain from inside the
  // service (external callers now get a throw).
  std::thread commit_claimed;
  {
    core::MutexLock lock(commit_mu_);
    commit_shutdown_ = true;
    commit_claimed.swap(commit_worker_);
  }
  commit_cv_.NotifyAll();
  if (commit_claimed.joinable()) commit_claimed.join();
}

void PlanningService::WorkerLoop(Shard* shard, int worker_id) {
  for (;;) {
    std::vector<Task> batch;
    double assembly_start = 0.0;
    {
      core::MutexLock lock(shard->mu);
      while (!shutting_down_.load() &&
             (paused_.load() || shard->queued() == 0)) {
        shard->not_empty.Wait(shard->mu);
      }
      if (shard->queued() == 0) {  // shutting down and drained
        --shard->live_workers;
        if (shard->live_workers == 0) shard->workers_done.NotifyAll();
        return;
      }
      if (trace_.enabled()) assembly_start = trace_.Now();
      batch = NextBatchLocked(shard);
      if (metrics_enabled_) {
        shard->queue_depth_gauge->Set(
            static_cast<std::int64_t>(shard->queued()));
      }
    }
    // The batch-assembly span carries the leader's trace id: it is the
    // leader's dequeue that gathered the batch.
    if (trace_.enabled() && batch.front().trace_id != 0) {
      obs::Span span;
      span.trace_id = batch.front().trace_id;
      span.name = "batch-assembly";
      span.detail = "size=" + std::to_string(batch.size());
      span.start_seconds = assembly_start;
      span.duration_seconds = trace_.Now() - assembly_start;
      trace_.Record(std::move(span));
    }
    // A batch may have freed several queue slots at once.
    if (batch.size() > 1) {
      shard->not_full.NotifyAll();
    } else {
      shard->not_full.NotifyOne();
    }
    ExecuteBatch(shard, std::move(batch), worker_id);
  }
}

std::vector<PlanningService::Task> PlanningService::NextBatchLocked(
    Shard* shard) {
  std::vector<Task> batch;
  // Strict two-level priority: any queued interactive request preempts the
  // whole sweep backlog. Interactive requests execute one per dequeue.
  if (!shard->interactive.empty()) {
    batch.push_back(std::move(shard->interactive.front()));
    shard->interactive.pop_front();
    return batch;
  }
  batch.push_back(std::move(shard->sweep.front()));
  shard->sweep.pop_front();
  if (max_batch_size_ <= 1) return batch;
  // Gather every queued sweep request with the same batch key (computed
  // once at Submit), preserving submission order among the gathered
  // members (order within a batch does not affect results — each member
  // plans in a private context — but keeps completion order intuitive).
  // One copy, not a reference: push_back below may reallocate `batch`.
  const PrecomputeKey key = batch.front().batch_key;
  for (auto it = shard->sweep.begin();
       it != shard->sweep.end() && batch.size() < max_batch_size_;) {
    if (it->batch_key == key) {
      batch.push_back(std::move(*it));
      it = shard->sweep.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

void PlanningService::ExecuteBatch(Shard* shard, std::vector<Task> batch,
                                   int worker_id) {
  const auto pickup_time = std::chrono::steady_clock::now();
  if (batch.size() > 1) {
    if (metrics_enabled_) {
      counters_.batches->Add();
      counters_.batched_requests->Add(batch.size() - 1);
    }
    core::MutexLock lock(stats_mu_);
    ++service_stats_.batches;
    service_stats_.batched_requests += batch.size() - 1;
  }

  // Every member shares the same as-submitted version (it is part of the
  // batch key), so one resolution pins the snapshot for the whole batch.
  // In particular all "latest" members see the same latest, even if a
  // commit lands while the batch is executing.
  const std::uint64_t requested_version = batch.front().request.snapshot_version;
  SnapshotPtr snapshot;
  PrecomputeCache::PrecomputePtr precompute;
  bool leader_hit = false;
  bool leader_derived = false;
  double precompute_seconds = 0.0;
  double resolve_start = 0.0;
  std::exception_ptr failure;
  try {
    snapshot = requested_version == 0 ? shard->store->Latest()
                                      : shard->store->Get(requested_version);
    if (snapshot == nullptr) {
      throw std::invalid_argument("unknown snapshot version for dataset " +
                                  batch.front().request.dataset);
    }
    if (trace_.enabled()) resolve_start = trace_.Now();
    const Stopwatch resolve_timer;
    precompute = ResolvePrecompute(*shard->store,
                                   batch.front().request.dataset, *snapshot,
                                   batch.front().request.options, &leader_hit,
                                   &leader_derived);
    precompute_seconds = resolve_timer.Seconds();
  } catch (...) {
    failure = std::current_exception();
  }
  // One resolution per batch, so one span: the leader's, annotated with
  // how the precompute was obtained.
  if (failure == nullptr && trace_.enabled() &&
      batch.front().trace_id != 0) {
    obs::Span span;
    span.trace_id = batch.front().trace_id;
    span.name = "precompute-resolve";
    span.detail =
        leader_hit ? "hit" : (leader_derived ? "derive" : "scratch");
    span.start_seconds = resolve_start;
    span.duration_seconds = precompute_seconds;
    trace_.Record(std::move(span));
  }
  // Snapshot resolution is done (the shared_ptr keeps it alive from here,
  // or the batch failed): release the members' queued-version pins.
  {
    core::MutexLock lock(shard->mu);
    for (const Task& task : batch) {
      UnpinVersionLocked(shard, task.pinned_version);
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    Task& task = batch[i];
    // Count completion before fulfilling the promise, so a caller woken by
    // the future observes the counter already advanced.
    if (failure != nullptr) {
      if (metrics_enabled_) counters_.completed->Add();
      {
        core::MutexLock lock(stats_mu_);
        ++service_stats_.completed;
      }
      task.promise.set_exception(failure);
      continue;
    }
    try {
      const bool traced = trace_.enabled() && task.trace_id != 0;
      ServiceResult result;
      result.request = task.request;
      result.request.snapshot_version = snapshot->version;  // resolved
      result.stats.snapshot_version = snapshot->version;
      result.stats.worker_id = worker_id;
      result.stats.batch_size = batch.size();
      result.stats.execute_sequence = execute_sequence_.fetch_add(1);
      result.stats.trace_id = task.trace_id;
      result.stats.queue_seconds =
          std::chrono::duration<double>(pickup_time - task.submit_time)
              .count();
      if (traced) {
        obs::Span span;
        span.trace_id = task.trace_id;
        span.name = "queue-wait";
        span.start_seconds = task.submit_trace_offset;
        span.duration_seconds = result.stats.queue_seconds;
        trace_.Record(std::move(span));
      }
      // The leader (first member) carries the true resolution provenance;
      // members were fed by it without touching the cache, which is
      // indistinguishable from a hit for accounting purposes.
      result.stats.precompute_cache_hit = i == 0 ? leader_hit : true;
      result.stats.precompute_derived = i == 0 ? leader_derived : false;
      result.stats.precompute_seconds = i == 0 ? precompute_seconds : 0.0;
      result.stats.precompute = precompute->stats;

      // Private context per request: queries share the immutable snapshot
      // and the const precompute (by shared_ptr, no copy), never the
      // mutable search scratch.
      double phase_start = traced ? trace_.Now() : 0.0;
      Stopwatch phase_timer;
      core::PlanningContext context =
          core::PlanningContext::BuildWithPrecompute(
              *snapshot->road, *snapshot->transit, task.request.options,
              precompute);
      result.stats.context_seconds = phase_timer.Seconds();
      if (traced) {
        obs::Span span;
        span.trace_id = task.trace_id;
        span.name = "context-build";
        span.start_seconds = phase_start;
        span.duration_seconds = result.stats.context_seconds;
        trace_.Record(std::move(span));
        phase_start = trace_.Now();
      }

      phase_timer.Reset();
      switch (task.request.planner) {
        case core::Planner::kEta:
          result.plan = core::RunEta(&context, core::SearchMode::kOnline);
          break;
        case core::Planner::kEtaPre:
          result.plan = core::RunEta(&context, core::SearchMode::kPrecomputed);
          break;
        case core::Planner::kVkTsp:
          result.plan = core::RunVkTsp(&context);
          break;
      }
      result.stats.plan_seconds = phase_timer.Seconds();
      if (traced) {
        obs::Span span;
        span.trace_id = task.trace_id;
        span.name = "plan-search";
        span.start_seconds = phase_start;
        span.duration_seconds = result.stats.plan_seconds;
        trace_.Record(std::move(span));
      }
      if (metrics_enabled_) {
        counters_.completed->Add();
        RecordRequestLatency(task.request.priority, result.stats,
                             /*batch_leader=*/i == 0);
      }
      {
        core::MutexLock lock(stats_mu_);
        ++service_stats_.completed;
      }
      task.promise.set_value(std::move(result));
    } catch (...) {
      if (metrics_enabled_) counters_.completed->Add();
      {
        core::MutexLock lock(stats_mu_);
        ++service_stats_.completed;
      }
      task.promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace ctbus::service
