#include "service/planning_service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/baselines.h"
#include "core/timing.h"
#include "gen/datasets.h"

namespace ctbus::service {

using core::SecondsSince;

PlanningService::PlanningService(const ServiceOptions& options)
    : warm_start_precompute_(options.warm_start_precompute),
      max_warm_start_depth_(std::max(1, options.max_warm_start_depth)),
      cache_(options.cache_capacity),
      queue_capacity_(std::max<std::size_t>(1, options.queue_capacity)) {
  int threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  workers_.reserve(threads);
  live_workers_ = threads;
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

PlanningService::~PlanningService() { Shutdown(); }

void PlanningService::RegisterDataset(const std::string& name,
                                      graph::RoadNetwork road,
                                      graph::TransitNetwork transit) {
  auto store = std::make_shared<SnapshotStore>(std::move(road),
                                               std::move(transit));
  std::lock_guard<std::mutex> lock(datasets_mu_);
  if (!datasets_.emplace(name, std::move(store)).second) {
    throw std::invalid_argument("RegisterDataset: duplicate name " + name);
  }
}

void PlanningService::RegisterPreset(const std::string& name, double scale) {
  gen::Dataset dataset = gen::MakeDatasetByName(name, scale);
  RegisterDataset(name, std::move(dataset.road), std::move(dataset.transit));
}

bool PlanningService::HasDataset(const std::string& name) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  return datasets_.count(name) > 0;
}

std::vector<std::string> PlanningService::DatasetNames() const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, store] : datasets_) names.push_back(name);
  return names;
}

std::shared_ptr<SnapshotStore> PlanningService::Store(
    const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  const auto it = datasets_.find(dataset);
  if (it == datasets_.end()) {
    throw std::invalid_argument("unknown dataset: " + dataset);
  }
  return it->second;
}

std::uint64_t PlanningService::LatestVersion(
    const std::string& dataset) const {
  return Store(dataset)->latest_version();
}

SnapshotPtr PlanningService::Snapshot(const std::string& dataset,
                                      std::uint64_t version) const {
  const auto store = Store(dataset);
  return version == 0 ? store->Latest() : store->Get(version);
}

std::future<ServiceResult> PlanningService::Submit(PlanRequest request) {
  Store(request.dataset);  // validate the dataset name up front
  Task task;
  task.request = std::move(request);
  task.submit_time = std::chrono::steady_clock::now();
  std::future<ServiceResult> future = task.promise.get_future();
  // Count the submission before the task becomes visible to workers, so
  // completed can never be observed ahead of submitted.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++service_stats_.submitted;
  }
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_not_full_.wait(lock, [this] {
      return shutting_down_ || queue_.size() < queue_capacity_;
    });
    if (shutting_down_) {
      lock.unlock();
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      --service_stats_.submitted;
      throw std::runtime_error("PlanningService: Submit after Shutdown");
    }
    queue_.push_back(std::move(task));
  }
  queue_not_empty_.notify_one();
  return future;
}

ServiceResult PlanningService::Plan(PlanRequest request) {
  return Submit(std::move(request)).get();
}

std::uint64_t PlanningService::Commit(const ServiceResult& result) {
  const PlanRequest& request = result.request;
  const auto store = Store(request.dataset);
  const std::uint64_t version = result.stats.snapshot_version;
  const SnapshotPtr snapshot = store->Get(version);
  if (snapshot == nullptr) {
    throw std::invalid_argument("Commit: unknown snapshot version");
  }
  // The universe that maps the result's edge ids back to stop pairs lives
  // in the precompute for (dataset, version, tau); typically still hot.
  const auto precompute =
      ResolvePrecompute(*store, request.dataset, *snapshot, request.options,
                        /*cache_hit=*/nullptr, /*derived=*/nullptr);
  // Commit on top of *latest* (base 0), not the version the plan was
  // computed against: sequential commits of plans from one snapshot must
  // stack, not clobber each other. The universe still comes from the
  // planned-against version — that is what maps the result's edge ids.
  return store->CommitRoute(result.plan, precompute->universe,
                            /*base_version=*/0);
}

PrecomputeCache::PrecomputePtr PlanningService::ResolvePrecompute(
    SnapshotStore& store, const std::string& dataset,
    const NetworkSnapshot& snapshot, const core::CtBusOptions& options,
    bool* cache_hit, bool* derived) {
  const PrecomputeKey key =
      MakePrecomputeKey(dataset, snapshot.version, options);
  bool was_derived = false;
  bool was_hit = false;
  const auto precompute = cache_.GetOrCompute(
      key,
      [&]() -> core::Precompute {
        if (warm_start_precompute_) {
          // Donor choice: a from-scratch (depth-0) precompute anchors the
          // derivation exactly, so prefer the nearest one even over a
          // closer derived donor; deriving from derived donors is allowed
          // up to max_warm_start_depth_ so stochastic carry error cannot
          // compound without bound. ReadySiblings sorts by descending
          // version; DeltaBetween rejects non-ancestors.
          const auto siblings = cache_.ReadySiblings(key);
          for (const bool scratch_only : {true, false}) {
            for (const auto& [donor_version, donor] : siblings) {
              if (donor_version >= snapshot.version) continue;
              const int depth = donor->stats.derivation_depth;
              if (scratch_only ? depth != 0
                               : depth >= max_warm_start_depth_) {
                continue;
              }
              const auto delta =
                  store.DeltaBetween(donor_version, snapshot.version);
              if (!delta.has_value()) continue;
              was_derived = true;
              return core::PlanningContext::DerivePrecompute(
                  *snapshot.road, *snapshot.transit, options, *donor,
                  *delta);
            }
          }
        }
        return core::PlanningContext::RunPrecompute(
            *snapshot.road, *snapshot.transit, options);
      },
      &was_hit);
  if (cache_hit != nullptr) *cache_hit = was_hit;
  if (derived != nullptr) *derived = was_derived;
  if (!was_hit) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (was_derived) {
      ++service_stats_.precomputes_derived;
    } else {
      ++service_stats_.precomputes_from_scratch;
    }
  }
  return precompute;
}

PlanningService::ServiceStats PlanningService::service_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return service_stats_;
}

void PlanningService::Shutdown() {
  // Claim the worker threads under the lock so concurrent Shutdown calls
  // (e.g. an explicit call racing the destructor) each join a disjoint —
  // possibly empty — set instead of double-joining the same threads.
  std::vector<std::thread> claimed;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutting_down_ = true;
    claimed.swap(workers_);
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  for (std::thread& worker : claimed) {
    if (worker.joinable()) worker.join();
  }
  // A caller that claimed no threads (another Shutdown got there first)
  // must still not return until every worker has left WorkerLoop —
  // otherwise the destructor could tear members down under a live worker.
  std::unique_lock<std::mutex> lock(queue_mu_);
  workers_done_.wait(lock, [this] { return live_workers_ == 0; });
}

void PlanningService::WorkerLoop(int worker_id) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_not_empty_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {  // shutting down and drained
        --live_workers_;
        if (live_workers_ == 0) workers_done_.notify_all();
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_not_full_.notify_one();
    const double queue_seconds = SecondsSince(task.submit_time);
    // Count completion before fulfilling the promise, so a caller woken by
    // the future observes the counter already advanced.
    try {
      ServiceResult result = Execute(task.request, worker_id);
      result.stats.queue_seconds = queue_seconds;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++service_stats_.completed;
      }
      task.promise.set_value(std::move(result));
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++service_stats_.completed;
      }
      task.promise.set_exception(std::current_exception());
    }
  }
}

ServiceResult PlanningService::Execute(const PlanRequest& request,
                                       int worker_id) {
  const auto store = Store(request.dataset);
  const SnapshotPtr snapshot = request.snapshot_version == 0
                                   ? store->Latest()
                                   : store->Get(request.snapshot_version);
  if (snapshot == nullptr) {
    throw std::invalid_argument("unknown snapshot version for dataset " +
                                request.dataset);
  }

  ServiceResult result;
  result.request = request;
  result.request.snapshot_version = snapshot->version;  // resolved
  result.stats.worker_id = worker_id;
  result.stats.snapshot_version = snapshot->version;

  auto timer = std::chrono::steady_clock::now();
  const auto precompute = ResolvePrecompute(
      *store, request.dataset, *snapshot, request.options,
      &result.stats.precompute_cache_hit, &result.stats.precompute_derived);
  result.stats.precompute_seconds = SecondsSince(timer);
  result.stats.precompute = precompute->stats;

  // Private context per request: queries share the immutable snapshot and
  // the const precompute (by shared_ptr, no copy), never the mutable
  // search scratch.
  timer = std::chrono::steady_clock::now();
  core::PlanningContext context = core::PlanningContext::BuildWithPrecompute(
      *snapshot->road, *snapshot->transit, request.options, precompute);
  result.stats.context_seconds = SecondsSince(timer);

  timer = std::chrono::steady_clock::now();
  switch (request.planner) {
    case core::Planner::kEta:
      result.plan = core::RunEta(&context, core::SearchMode::kOnline);
      break;
    case core::Planner::kEtaPre:
      result.plan = core::RunEta(&context, core::SearchMode::kPrecomputed);
      break;
    case core::Planner::kVkTsp:
      result.plan = core::RunVkTsp(&context);
      break;
  }
  result.stats.plan_seconds = SecondsSince(timer);
  return result;
}

}  // namespace ctbus::service
