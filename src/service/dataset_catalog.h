// Unified dataset registration for the planning service: one descriptor
// covers both synthetic gen:: presets and on-disk files (network records
// via io::LoadRoadNetwork / io::LoadTransitNetwork plus an optional trip
// CSV), making PlanningService::RegisterDataset reachable from real
// paper-scale data for the first time. The catalog builds the networks,
// validates every cross-reference (stop -> road vertex, transit edge ->
// road edges, trip -> road path), aggregates trip demand onto the road
// network, and registers the dataset — with its per-dataset snapshot
// retention budget — into the service. Failures are reported as
// human-readable messages (file:line diagnostics from the io layer are
// passed through) instead of bare nullopts, and a failed registration
// leaves the service untouched.
//
// Trip CSV format (Equation 4 aggregation): one commuting trip per row,
// written as a sequence of >= 2 road-vertex ids; consecutive vertices
// must be adjacent in the road network, and every road edge the trip
// crosses has its trip count f_e incremented by one. Rows are streamed
// (io::ForEachCsvRow), so a paper-scale trip file costs one row of peak
// memory, not the whole table.
//
// Thread-safety: a catalog is a thin stateless helper over the
// (thread-safe) PlanningService it borrows; distinct catalogs may share
// one service. The service must outlive the catalog.
#ifndef CTBUS_SERVICE_DATASET_CATALOG_H_
#define CTBUS_SERVICE_DATASET_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "service/planning_service.h"
#include "service/snapshot_store.h"

namespace ctbus::service {

/// One dataset's source + budgets. Exactly one source must be set:
/// either `preset` (a gen:: registry name) or the road/transit file pair.
struct DatasetDescriptor {
  /// Service-visible dataset name (PlanRequest::dataset).
  /// ctbus-lint: key-exempt(the dataset name IS the key's dataset field, copied verbatim by MakePrecomputeKey's caller)
  std::string name;

  /// Synthetic source: a gen:: preset registry name (gen::DatasetNames()).
  /// ctbus-lint: key-exempt(source selector; the built networks are keyed by dataset name + snapshot version, not by how they were built)
  std::string preset;
  /// Scale factor for the preset ("midtown" ignores it).
  /// ctbus-lint: key-exempt(build-time input baked into the registered networks; requests key on the resulting dataset)
  double preset_scale = 1.0;

  /// File source: io/network_io.h record files.
  /// ctbus-lint: key-exempt(source selector; see preset)
  std::string road_path;
  /// ctbus-lint: key-exempt(source selector; see preset)
  std::string transit_path;
  /// Optional trip CSV aggregated onto the road demand on top of the
  /// road file's embedded trip counts (empty = no extra trips).
  /// ctbus-lint: key-exempt(demand is baked into the registered road network before any request is keyed)
  std::string trips_path;

  /// Optional binary-snapshot accelerator (io/snapshot.h), NOT a source —
  /// the exactly-one-source rule above is unchanged. When set: if the
  /// file exists and decodes cleanly, the networks are loaded from it
  /// (text parsing and trip ingestion are skipped entirely — the
  /// snapshot's trip counts already include any aggregated trips);
  /// otherwise the dataset is built from its source and the snapshot is
  /// written here for the next start. A corrupt or stale-format file is
  /// rebuilt, but a build that cannot *write* the snapshot fails
  /// registration — a configured accelerator that silently never
  /// materializes would hide the misconfiguration forever.
  /// ctbus-lint: key-exempt(on-disk accelerator keyed by content inside the file; the path changes where bytes live, never what a dataset contains)
  std::string snapshot_path;

  /// Snapshot retention for this dataset (defaults keep everything).
  /// ctbus-lint: key-exempt(retention changes what stays resident, never what a key computes to — same contract as the cache budgets)
  SnapshotRetentionPolicy retention;
};

/// What a successful registration built (for logs, benches and tests).
struct DatasetManifest {
  std::string name;
  int road_vertices = 0;
  int road_edges = 0;
  int stops = 0;
  int routes = 0;
  /// Trips aggregated from DatasetDescriptor::trips_path (0 for presets
  /// and for file datasets without a trip CSV).
  std::int64_t trips_ingested = 0;
  /// ApproxBytes of the seed snapshot (road + transit).
  std::size_t snapshot_bytes = 0;
  /// True if the networks came from DatasetDescriptor::snapshot_path
  /// instead of the text source.
  bool loaded_from_snapshot = false;
  /// True if this registration wrote (or rewrote) the snapshot file.
  bool snapshot_saved = false;
};

class DatasetCatalog {
 public:
  /// The service must outlive the catalog.
  explicit DatasetCatalog(PlanningService* service) : service_(service) {}

  /// Builds, validates and registers `descriptor` into the service.
  /// Returns the manifest on success; on failure returns nullopt, sets
  /// *error (when non-null) to a diagnostic message, and leaves the
  /// service unchanged.
  std::optional<DatasetManifest> Register(const DatasetDescriptor& descriptor,
                                          std::string* error = nullptr);

 private:
  PlanningService* service_;
};

}  // namespace ctbus::service

#endif  // CTBUS_SERVICE_DATASET_CATALOG_H_
