#include "service/dataset_catalog.h"

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gen/datasets.h"
#include "io/csv.h"
#include "io/network_io.h"
#include "io/parse.h"
#include "io/snapshot.h"

namespace ctbus::service {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Streams the trip CSV into the road network's trip counts. Each row is
/// one trip: a sequence of >= 2 road-vertex ids whose consecutive pairs
/// must be road-adjacent. Returns false + message on any malformed row.
bool IngestTrips(const std::string& path, graph::RoadNetwork* road,
                 std::int64_t* trips, std::string* error) {
  std::string row_error;
  const bool ok = io::ForEachCsvRow(
      path,
      [&](std::vector<std::string>&& fields, std::size_t line_number) {
        const auto fail = [&](const std::string& reason) {
          row_error = io::LineError(path, line_number, reason);
          return false;
        };
        if (fields.size() < 2) {
          return fail("a trip needs at least two road vertices");
        }
        int prev = -1;
        std::vector<int> edges;
        edges.reserve(fields.size() - 1);
        for (std::size_t i = 0; i < fields.size(); ++i) {
          int vertex = 0;
          if (!io::ParseInt(fields[i], &vertex)) {
            return fail("'" + fields[i] + "' is not a road-vertex id");
          }
          if (vertex < 0 || vertex >= road->graph().num_vertices()) {
            return fail("road vertex " + std::to_string(vertex) +
                        " out of range");
          }
          if (i > 0) {
            const auto edge = road->graph().EdgeBetween(prev, vertex);
            if (!edge.has_value()) {
              return fail("vertices " + std::to_string(prev) + " and " +
                          std::to_string(vertex) +
                          " are not adjacent in the road network");
            }
            edges.push_back(*edge);
          }
          prev = vertex;
        }
        for (int e : edges) road->AddTripCount(e);
        ++*trips;
        return true;
      },
      error);
  if (!ok) return false;
  if (!row_error.empty()) return Fail(error, row_error);
  return true;
}

/// Cross-checks the loaded transit network against the road network, so
/// planning never indexes out of range: stop affiliations must name road
/// vertices and realized transit edges must name road edges.
bool ValidateCrossReferences(const graph::RoadNetwork& road,
                             const graph::TransitNetwork& transit,
                             const std::string& transit_path,
                             std::string* error) {
  for (int s = 0; s < transit.num_stops(); ++s) {
    const int rv = transit.stop(s).road_vertex;
    if (rv < 0 || rv >= road.graph().num_vertices()) {
      return Fail(error, transit_path + ": stop " + std::to_string(s) +
                             " is affiliated with road vertex " +
                             std::to_string(rv) + ", which does not exist");
    }
  }
  for (int e = 0; e < transit.num_edges(); ++e) {
    for (int re : transit.edge(e).road_edges) {
      if (re < 0 || re >= road.graph().num_edges()) {
        return Fail(error, transit_path + ": transit edge " +
                               std::to_string(e) + " crosses road edge " +
                               std::to_string(re) + ", which does not exist");
      }
    }
  }
  return true;
}

}  // namespace

std::optional<DatasetManifest> DatasetCatalog::Register(
    const DatasetDescriptor& descriptor, std::string* error) {
  const std::string prefix = "dataset '" + descriptor.name + "': ";
  if (descriptor.name.empty()) {
    Fail(error, "dataset name must not be empty");
    return std::nullopt;
  }
  if (service_->HasDataset(descriptor.name)) {
    Fail(error, prefix + "already registered");
    return std::nullopt;
  }
  const bool from_preset = !descriptor.preset.empty();
  const bool from_files =
      !descriptor.road_path.empty() || !descriptor.transit_path.empty();
  if (from_preset == from_files) {
    Fail(error, prefix +
                    "exactly one source required: either `preset` or the "
                    "road_path + transit_path file pair");
    return std::nullopt;
  }

  graph::RoadNetwork road;
  graph::TransitNetwork transit;
  std::int64_t trips = 0;
  bool loaded_from_snapshot = false;
  bool snapshot_saved = false;
  // The binary accelerator first: a valid snapshot carries the networks
  // with trip demand already aggregated, so the whole text path below
  // (parse + cross-reference validation + trip ingestion) is skipped. A
  // missing, corrupt, or stale-format file falls through to the source
  // build — the snapshot is a cache of the source, never a source itself.
  if (!descriptor.snapshot_path.empty()) {
    if (auto snapshot = io::LoadSnapshot(descriptor.snapshot_path)) {
      road = std::move(snapshot->road);
      transit = std::move(snapshot->transit);
      loaded_from_snapshot = true;
    }
  }
  if (loaded_from_snapshot) {
    // Decode already bounds every cross-reference; re-assert the catalog's
    // own contract anyway so this path can never drift weaker than text.
    std::string validate_error;
    if (!ValidateCrossReferences(road, transit, descriptor.snapshot_path,
                                 &validate_error)) {
      Fail(error, prefix + validate_error);
      return std::nullopt;
    }
  } else if (from_preset) {
    if (!gen::HasDataset(descriptor.preset)) {
      Fail(error, prefix + "unknown preset '" + descriptor.preset +
                      "' (see gen::DatasetNames())");
      return std::nullopt;
    }
    gen::Dataset dataset =
        gen::MakeDatasetByName(descriptor.preset, descriptor.preset_scale);
    road = std::move(dataset.road);
    transit = std::move(dataset.transit);
  } else {
    if (descriptor.road_path.empty() || descriptor.transit_path.empty()) {
      Fail(error, prefix + "file datasets need both road_path and "
                           "transit_path");
      return std::nullopt;
    }
    std::string load_error;
    auto loaded_road = io::LoadRoadNetwork(descriptor.road_path, &load_error);
    if (!loaded_road.has_value()) {
      Fail(error, prefix + "road network: " + load_error);
      return std::nullopt;
    }
    auto loaded_transit =
        io::LoadTransitNetwork(descriptor.transit_path, &load_error);
    if (!loaded_transit.has_value()) {
      Fail(error, prefix + "transit network: " + load_error);
      return std::nullopt;
    }
    road = std::move(*loaded_road);
    transit = std::move(*loaded_transit);
    if (!ValidateCrossReferences(road, transit, descriptor.transit_path,
                                 &load_error)) {
      Fail(error, prefix + load_error);
      return std::nullopt;
    }
    if (!descriptor.trips_path.empty() &&
        !IngestTrips(descriptor.trips_path, &road, &trips, &load_error)) {
      Fail(error, prefix + "trips: " + load_error);
      return std::nullopt;
    }
  }

  if (!descriptor.snapshot_path.empty() && !loaded_from_snapshot) {
    // Built from source with an accelerator configured: write it now so
    // the next start loads in milliseconds. The catalog stores networks
    // only (it does not know planner options, so no precompute/demand
    // sections). A write failure fails registration: a snapshot_path
    // that can never materialize is a misconfiguration, not a warning.
    io::Snapshot snapshot;
    snapshot.road = road;
    snapshot.transit = transit;
    std::string save_error;
    if (!io::SaveSnapshot(snapshot, descriptor.snapshot_path, &save_error)) {
      Fail(error, prefix + "snapshot: " + save_error);
      return std::nullopt;
    }
    snapshot_saved = true;
  }

  DatasetManifest manifest;
  manifest.name = descriptor.name;
  manifest.road_vertices = road.graph().num_vertices();
  manifest.road_edges = road.graph().num_edges();
  manifest.stops = transit.num_stops();
  manifest.routes = transit.num_active_routes();
  manifest.trips_ingested = trips;
  manifest.snapshot_bytes = road.ApproxBytes() + transit.ApproxBytes();
  manifest.loaded_from_snapshot = loaded_from_snapshot;
  manifest.snapshot_saved = snapshot_saved;
  try {
    service_->RegisterDataset(descriptor.name, std::move(road),
                              std::move(transit), descriptor.retention);
  } catch (const std::exception& e) {
    Fail(error, prefix + e.what());
    return std::nullopt;
  }
  return manifest;
}

}  // namespace ctbus::service
