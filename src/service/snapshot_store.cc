#include "service/snapshot_store.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace ctbus::service {

namespace {

void SortUnique(std::vector<int>* values) {
  std::sort(values->begin(), values->end());
  values->erase(std::unique(values->begin(), values->end()), values->end());
}

}  // namespace

SnapshotStore::SnapshotStore(graph::RoadNetwork road,
                             graph::TransitNetwork transit) {
  Publish(std::move(road), std::move(transit), /*parent_version=*/0, {});
}

SnapshotPtr SnapshotStore::Latest() const {
  core::MutexLock lock(mu_);
  return latest_;
}

SnapshotPtr SnapshotStore::Get(std::uint64_t version) const {
  core::MutexLock lock(mu_);
  const auto it = versions_.find(version);
  return it == versions_.end() ? nullptr : it->second;
}

std::uint64_t SnapshotStore::latest_version() const {
  core::MutexLock lock(mu_);
  return latest_->version;
}

std::size_t SnapshotStore::num_versions() const {
  core::MutexLock lock(mu_);
  return versions_.size();
}

std::vector<std::uint64_t> SnapshotStore::Versions() const {
  core::MutexLock lock(mu_);
  std::vector<std::uint64_t> versions;
  versions.reserve(versions_.size());
  for (const auto& [version, snapshot] : versions_) versions.push_back(version);
  return versions;  // std::map iterates ascending
}

std::uint64_t SnapshotStore::CommitRoute(const core::PlanResult& result,
                                         const core::EdgeUniverse& universe,
                                         std::uint64_t base_version) {
  if (!result.found) {
    throw std::invalid_argument("CommitRoute: result has no route");
  }
  core::MutexLock commit_lock(commit_mu_);
  SnapshotPtr base =
      base_version == 0 ? Latest() : Get(base_version);
  if (base == nullptr) {
    throw std::invalid_argument("CommitRoute: unknown base version");
  }
  // Record the edge-diff against the base before mutating: pairs that were
  // not yet active-connected become transit edges, and every covered road
  // edge has its demand zeroed. This lineage is what lets the precompute
  // engine warm-start the new version (see DeltaBetween).
  core::SnapshotDelta delta;
  for (int e : result.path.edges()) {
    const core::PlannableEdge& edge = universe.edge(e);
    if (!base->transit->ActiveEdgeBetween(edge.u, edge.v).has_value()) {
      delta.added_stop_pairs.emplace_back(edge.u, edge.v);
      delta.touched_stops.push_back(edge.u);
      delta.touched_stops.push_back(edge.v);
    }
    delta.changed_road_edges.insert(delta.changed_road_edges.end(),
                                    edge.road_edges.begin(),
                                    edge.road_edges.end());
  }
  SortUnique(&delta.touched_stops);
  SortUnique(&delta.changed_road_edges);

  // Copy-on-write: mutate private copies, then publish atomically.
  graph::RoadNetwork road = *base->road;
  graph::TransitNetwork transit = *base->transit;
  for (int e : result.path.edges()) {
    const core::PlannableEdge& edge = universe.edge(e);
    transit.AddEdge(edge.u, edge.v, edge.length, edge.road_edges);
  }
  transit.AddRoute(result.path.stops());
  for (int e : result.path.edges()) {
    road.ZeroTripCounts(universe.edge(e).road_edges);
  }
  return Publish(std::move(road), std::move(transit), base->version,
                 std::move(delta));
}

std::uint64_t SnapshotStore::ParentVersion(std::uint64_t version) const {
  core::MutexLock lock(mu_);
  const auto it = lineage_.find(version);
  return it == lineage_.end() ? 0 : it->second.parent_version;
}

std::optional<core::SnapshotDelta> SnapshotStore::DeltaBetween(
    std::uint64_t from_version, std::uint64_t to_version) const {
  core::MutexLock lock(mu_);
  core::SnapshotDelta composed;
  std::uint64_t cursor = to_version;
  while (cursor != from_version) {
    const auto it = lineage_.find(cursor);
    if (it == lineage_.end()) return std::nullopt;  // hit the root / unknown
    const core::SnapshotDelta& step = it->second.delta;
    composed.added_stop_pairs.insert(composed.added_stop_pairs.end(),
                                     step.added_stop_pairs.begin(),
                                     step.added_stop_pairs.end());
    composed.touched_stops.insert(composed.touched_stops.end(),
                                  step.touched_stops.begin(),
                                  step.touched_stops.end());
    composed.changed_road_edges.insert(composed.changed_road_edges.end(),
                                       step.changed_road_edges.begin(),
                                       step.changed_road_edges.end());
    cursor = it->second.parent_version;
  }
  // A pair activated by one commit stays active, so pairs cannot repeat
  // across the composed path; the id lists can, and are deduplicated.
  SortUnique(&composed.touched_stops);
  SortUnique(&composed.changed_road_edges);
  return composed;
}

void SnapshotStore::Prune(std::size_t keep_latest) {
  core::MutexLock lock(mu_);
  // keep_latest == 0 would erase every version including the latest,
  // leaving Get(latest_version()) == nullptr while Latest() still hands
  // out the snapshot. The latest version is always retained.
  if (keep_latest == 0) keep_latest = 1;
  while (versions_.size() > keep_latest) {
    resident_bytes_ -= versions_.begin()->second->approx_bytes;
    versions_.erase(versions_.begin());
  }
}

SnapshotStore::RetentionResult SnapshotStore::ApplyRetention(
    const SnapshotRetentionPolicy& policy,
    const std::vector<std::uint64_t>& protected_versions) {
  core::MutexLock lock(mu_);
  RetentionResult result;
  const std::unordered_set<std::uint64_t> protected_set(
      protected_versions.begin(), protected_versions.end());
  const auto over_limit = [&] {
    return (policy.keep_latest > 0 &&
            versions_.size() > policy.keep_latest) ||
           (policy.max_bytes > 0 && resident_bytes_ > policy.max_bytes);
  };
  // Oldest-first; the latest and protected versions are skipped, so a
  // budget tighter than the unprunable set is satisfied best-effort.
  for (auto it = versions_.begin();
       it != versions_.end() && over_limit();) {
    if (it->first == latest_->version || protected_set.count(it->first) > 0) {
      ++it;
      continue;
    }
    resident_bytes_ -= it->second->approx_bytes;
    it = versions_.erase(it);
    ++result.versions_pruned;
  }
  // Lineage below the oldest still-relevant version can never be walked
  // again: DeltaBetween(from, to) only reads records with child > from,
  // and no caller may name a `from` older than every resident AND every
  // protected version (protected covers cached donors whose snapshots
  // are long pruned — their lineage must survive for pending derives).
  std::uint64_t cutoff = latest_->version;
  if (!versions_.empty()) {
    cutoff = std::min(cutoff, versions_.begin()->first);
  }
  for (std::uint64_t v : protected_versions) {
    if (v != 0) cutoff = std::min(cutoff, v);
  }
  for (auto it = lineage_.begin();
       it != lineage_.end() && it->first <= cutoff;) {
    it = lineage_.erase(it);
    ++result.lineage_trimmed;
  }
  return result;
}

std::size_t SnapshotStore::ApproxBytes() const {
  core::MutexLock lock(mu_);
  return resident_bytes_;
}

std::size_t SnapshotStore::num_lineage_records() const {
  core::MutexLock lock(mu_);
  return lineage_.size();
}

std::uint64_t SnapshotStore::Publish(graph::RoadNetwork road,
                                     graph::TransitNetwork transit,
                                     std::uint64_t parent_version,
                                     core::SnapshotDelta delta) {
  auto snapshot = std::make_shared<NetworkSnapshot>();
  snapshot->road =
      std::make_shared<const graph::RoadNetwork>(std::move(road));
  snapshot->transit =
      std::make_shared<const graph::TransitNetwork>(std::move(transit));
  snapshot->parent_version = parent_version;
  // Networks are immutable from here on, so the footprint is measured
  // exactly once per version.
  snapshot->approx_bytes =
      snapshot->road->ApproxBytes() + snapshot->transit->ApproxBytes();
  core::MutexLock lock(mu_);
  snapshot->version = next_version_++;
  latest_ = SnapshotPtr(std::move(snapshot));
  versions_[latest_->version] = latest_;
  resident_bytes_ += latest_->approx_bytes;
  if (parent_version != 0) {
    lineage_[latest_->version] = Lineage{parent_version, std::move(delta)};
  }
  return latest_->version;
}

}  // namespace ctbus::service
