#include "service/snapshot_store.h"

#include <stdexcept>
#include <utility>

namespace ctbus::service {

SnapshotStore::SnapshotStore(graph::RoadNetwork road,
                             graph::TransitNetwork transit) {
  Publish(std::move(road), std::move(transit));
}

SnapshotPtr SnapshotStore::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

SnapshotPtr SnapshotStore::Get(std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = versions_.find(version);
  return it == versions_.end() ? nullptr : it->second;
}

std::uint64_t SnapshotStore::latest_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_->version;
}

std::size_t SnapshotStore::num_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.size();
}

std::uint64_t SnapshotStore::CommitRoute(const core::PlanResult& result,
                                         const core::EdgeUniverse& universe,
                                         std::uint64_t base_version) {
  if (!result.found) {
    throw std::invalid_argument("CommitRoute: result has no route");
  }
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  SnapshotPtr base =
      base_version == 0 ? Latest() : Get(base_version);
  if (base == nullptr) {
    throw std::invalid_argument("CommitRoute: unknown base version");
  }
  // Copy-on-write: mutate private copies, then publish atomically.
  graph::RoadNetwork road = *base->road;
  graph::TransitNetwork transit = *base->transit;
  for (int e : result.path.edges()) {
    const core::PlannableEdge& edge = universe.edge(e);
    transit.AddEdge(edge.u, edge.v, edge.length, edge.road_edges);
  }
  transit.AddRoute(result.path.stops());
  for (int e : result.path.edges()) {
    road.ZeroTripCounts(universe.edge(e).road_edges);
  }
  return Publish(std::move(road), std::move(transit));
}

void SnapshotStore::Prune(std::size_t keep_latest) {
  std::lock_guard<std::mutex> lock(mu_);
  while (versions_.size() > keep_latest) {
    versions_.erase(versions_.begin());
  }
}

std::uint64_t SnapshotStore::Publish(graph::RoadNetwork road,
                                     graph::TransitNetwork transit) {
  auto snapshot = std::make_shared<NetworkSnapshot>();
  snapshot->road =
      std::make_shared<const graph::RoadNetwork>(std::move(road));
  snapshot->transit =
      std::make_shared<const graph::TransitNetwork>(std::move(transit));
  std::lock_guard<std::mutex> lock(mu_);
  snapshot->version = next_version_++;
  latest_ = SnapshotPtr(std::move(snapshot));
  versions_[latest_->version] = latest_;
  return latest_->version;
}

}  // namespace ctbus::service
