#include "service/precompute_cache.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ctbus::service {

bool PrecomputeKey::operator==(const PrecomputeKey& other) const {
  return dataset == other.dataset &&
         snapshot_version == other.snapshot_version && tau == other.tau &&
         probes == other.probes && lanczos_steps == other.lanczos_steps &&
         seed == other.seed && probe_kind == other.probe_kind &&
         use_perturbation == other.use_perturbation &&
         prune_candidates == other.prune_candidates &&
         prune_keep_rank == other.prune_keep_rank;
}

PrecomputeKey MakePrecomputeKey(const std::string& dataset,
                                std::uint64_t snapshot_version,
                                const core::CtBusOptions& options) {
  PrecomputeKey key;
  key.dataset = dataset;
  key.snapshot_version = snapshot_version;
  // operator== on doubles treats -0.0 and 0.0 as equal, but std::hash
  // <double> may not, which would break the unordered_map invariant
  // (equal keys hashing to different buckets). Normalize signed zero so
  // both spellings produce one key. NaN breaks the invariant the other
  // way around (a NaN key would not even equal itself, so every lookup
  // would miss and insert a fresh entry); reject it at runtime — an
  // assert would vanish in NDEBUG builds and let the cache silently leak.
  if (std::isnan(options.tau)) {
    throw std::invalid_argument("MakePrecomputeKey: tau must not be NaN");
  }
  key.tau = options.tau == 0.0 ? 0.0 : options.tau;
  key.probes = options.precompute_estimator.probes;
  key.lanczos_steps = options.precompute_estimator.lanczos_steps;
  key.seed = options.precompute_estimator.seed;
  key.probe_kind = static_cast<int>(options.precompute_estimator.probe_kind);
  key.use_perturbation = options.use_perturbation_precompute;
  // The screen only runs on the stochastic path, and keep_rank is inert
  // when pruning is off — normalize both so equal-output requests share
  // one key (and one request batch).
  key.prune_candidates =
      options.prune_candidates && !options.use_perturbation_precompute;
  key.prune_keep_rank =
      key.prune_candidates ? std::max(1, options.prune_keep_rank) : 0;
  return key;
}

std::size_t PrecomputeKeyHash::operator()(const PrecomputeKey& key) const {
  auto mix = [](std::size_t h, std::size_t v) {
    return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  std::size_t h = std::hash<std::string>()(key.dataset);
  h = mix(h, std::hash<std::uint64_t>()(key.snapshot_version));
  h = mix(h, std::hash<double>()(key.tau));
  h = mix(h, static_cast<std::size_t>(key.probes));
  h = mix(h, static_cast<std::size_t>(key.lanczos_steps));
  h = mix(h, std::hash<std::uint64_t>()(key.seed));
  h = mix(h, static_cast<std::size_t>(key.probe_kind));
  h = mix(h, key.use_perturbation ? 1u : 2u);
  h = mix(h, key.prune_candidates ? 1u : 2u);
  h = mix(h, static_cast<std::size_t>(key.prune_keep_rank));
  return h;
}

PrecomputeCache::PrecomputeCache(std::size_t capacity, std::size_t max_bytes)
    : capacity_(capacity), max_bytes_(max_bytes) {}

PrecomputeCache::PrecomputePtr PrecomputeCache::GetOrCompute(
    const PrecomputeKey& key, const ComputeFn& compute, bool* was_hit) {
  if (capacity_ == 0) {
    {
      core::MutexLock lock(mu_);
      ++stats_.misses;
    }
    if (was_hit != nullptr) *was_hit = false;
    return std::make_shared<const core::Precompute>(compute());
  }

  std::promise<PrecomputePtr> promise;
  std::uint64_t generation = 0;
  {
    core::MutexLock lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      std::shared_future<PrecomputePtr> future = it->second.future;
      lock.Unlock();
      if (was_hit != nullptr) *was_hit = true;
      return future.get();  // ready, or being computed by another caller
    }
    ++stats_.misses;
    generation = next_generation_++;
    lru_.push_front(key);
    entries_.emplace(key, Entry{promise.get_future().share(), lru_.begin(),
                                /*ready=*/false, generation});
    EvictReadyLocked();
  }
  if (was_hit != nullptr) *was_hit = false;
  try {
    PrecomputePtr result =
        std::make_shared<const core::Precompute>(compute());
    promise.set_value(result);
    core::MutexLock lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end() && it->second.generation == generation) {
      it->second.ready = true;
      it->second.bytes = result->ApproxBytes();
      resident_bytes_ += it->second.bytes;
      EvictReadyLocked();  // limits may have been exceeded while in flight
    }
    return result;
  } catch (...) {
    promise.set_exception(std::current_exception());
    core::MutexLock lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end() && it->second.generation == generation) {
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
    }
    throw;
  }
}

void PrecomputeCache::EvictReadyLocked() {
  std::size_t resident = entries_.size();
  // The walk stops at lru_.begin(): the MRU entry is never evicted, so a
  // single entry larger than the whole byte budget is still admitted and
  // serves hits until the next insertion displaces it from the MRU slot.
  const auto over_limit = [&] {
    return resident > capacity_ ||
           (max_bytes_ > 0 && resident_bytes_ > max_bytes_);
  };
  auto candidate = lru_.end();
  while (over_limit() && candidate != lru_.begin()) {
    --candidate;  // walk tail -> head, skipping in-flight entries
    if (candidate == lru_.begin()) break;  // reached the MRU entry
    const auto it = entries_.find(*candidate);
    if (it == entries_.end() || !it->second.ready) continue;
    resident_bytes_ -= it->second.bytes;
    stats_.evicted_bytes += it->second.bytes;
    entries_.erase(it);
    candidate = lru_.erase(candidate);
    ++stats_.evictions;
    --resident;
  }
}

std::vector<std::pair<std::uint64_t, PrecomputeCache::PrecomputePtr>>
PrecomputeCache::ReadySiblings(const PrecomputeKey& key) const {
  std::vector<std::pair<std::uint64_t, PrecomputePtr>> siblings;
  {
    core::MutexLock lock(mu_);
    for (const auto& [resident_key, entry] : entries_) {
      if (!entry.ready) continue;
      if (resident_key.snapshot_version == key.snapshot_version) continue;
      PrecomputeKey probe = resident_key;
      probe.snapshot_version = key.snapshot_version;
      if (!(probe == key)) continue;
      siblings.emplace_back(resident_key.snapshot_version,
                            entry.future.get());
    }
  }
  std::sort(siblings.begin(), siblings.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return siblings;
}

bool PrecomputeCache::Contains(const PrecomputeKey& key) const {
  core::MutexLock lock(mu_);
  return entries_.count(key) > 0;
}

PrecomputeCache::PrecomputePtr PrecomputeCache::Peek(
    const PrecomputeKey& key) const {
  core::MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.ready) return nullptr;
  return it->second.future.get();  // ready => never blocks
}

std::vector<PrecomputeKey> PrecomputeCache::KeysByRecency() const {
  core::MutexLock lock(mu_);
  return {lru_.begin(), lru_.end()};
}

void PrecomputeCache::Clear() {
  core::MutexLock lock(mu_);
  entries_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

std::size_t PrecomputeCache::size() const {
  core::MutexLock lock(mu_);
  return entries_.size();
}

std::size_t PrecomputeCache::resident_bytes() const {
  core::MutexLock lock(mu_);
  return resident_bytes_;
}

PrecomputeCache::Stats PrecomputeCache::stats() const {
  core::MutexLock lock(mu_);
  Stats stats = stats_;
  stats.resident_bytes = resident_bytes_;
  return stats;
}

}  // namespace ctbus::service
