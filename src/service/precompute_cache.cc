#include "service/precompute_cache.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "io/snapshot.h"

namespace ctbus::service {

namespace {

/// The PrecomputeKey's option fields as spill-file provenance. Field for
/// field: PrecomputeKey already stores them normalized (MakePrecomputeKey),
/// matching io::MakeProvenance's normalization of raw options.
io::PrecomputeProvenance ProvenanceOf(const PrecomputeKey& key) {
  io::PrecomputeProvenance p;
  p.tau = key.tau;
  p.probes = key.probes;
  p.lanczos_steps = key.lanczos_steps;
  p.seed = key.seed;
  p.probe_kind = key.probe_kind;
  p.use_perturbation = key.use_perturbation;
  p.prune_candidates = key.prune_candidates;
  p.prune_keep_rank = key.prune_keep_rank;
  return p;
}

}  // namespace

bool PrecomputeKey::operator==(const PrecomputeKey& other) const {
  return dataset == other.dataset &&
         snapshot_version == other.snapshot_version && tau == other.tau &&
         probes == other.probes && lanczos_steps == other.lanczos_steps &&
         seed == other.seed && probe_kind == other.probe_kind &&
         use_perturbation == other.use_perturbation &&
         prune_candidates == other.prune_candidates &&
         prune_keep_rank == other.prune_keep_rank;
}

PrecomputeKey MakePrecomputeKey(const std::string& dataset,
                                std::uint64_t snapshot_version,
                                const core::CtBusOptions& options) {
  PrecomputeKey key;
  key.dataset = dataset;
  key.snapshot_version = snapshot_version;
  // operator== on doubles treats -0.0 and 0.0 as equal, but std::hash
  // <double> may not, which would break the unordered_map invariant
  // (equal keys hashing to different buckets). Normalize signed zero so
  // both spellings produce one key. NaN breaks the invariant the other
  // way around (a NaN key would not even equal itself, so every lookup
  // would miss and insert a fresh entry); reject it at runtime — an
  // assert would vanish in NDEBUG builds and let the cache silently leak.
  if (std::isnan(options.tau)) {
    throw std::invalid_argument("MakePrecomputeKey: tau must not be NaN");
  }
  key.tau = options.tau == 0.0 ? 0.0 : options.tau;
  key.probes = options.precompute_estimator.probes;
  key.lanczos_steps = options.precompute_estimator.lanczos_steps;
  key.seed = options.precompute_estimator.seed;
  key.probe_kind = static_cast<int>(options.precompute_estimator.probe_kind);
  key.use_perturbation = options.use_perturbation_precompute;
  // The screen only runs on the stochastic path, and keep_rank is inert
  // when pruning is off — normalize both so equal-output requests share
  // one key (and one request batch).
  key.prune_candidates =
      options.prune_candidates && !options.use_perturbation_precompute;
  key.prune_keep_rank =
      key.prune_candidates ? std::max(1, options.prune_keep_rank) : 0;
  return key;
}

std::size_t PrecomputeKeyHash::operator()(const PrecomputeKey& key) const {
  auto mix = [](std::size_t h, std::size_t v) {
    return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  std::size_t h = std::hash<std::string>()(key.dataset);
  h = mix(h, std::hash<std::uint64_t>()(key.snapshot_version));
  h = mix(h, std::hash<double>()(key.tau));
  h = mix(h, static_cast<std::size_t>(key.probes));
  h = mix(h, static_cast<std::size_t>(key.lanczos_steps));
  h = mix(h, std::hash<std::uint64_t>()(key.seed));
  h = mix(h, static_cast<std::size_t>(key.probe_kind));
  h = mix(h, key.use_perturbation ? 1u : 2u);
  h = mix(h, key.prune_candidates ? 1u : 2u);
  h = mix(h, static_cast<std::size_t>(key.prune_keep_rank));
  return h;
}

PrecomputeCache::PrecomputeCache(std::size_t capacity, std::size_t max_bytes,
                                 std::string spill_dir)
    : capacity_(capacity),
      max_bytes_(max_bytes),
      spill_dir_(std::move(spill_dir)) {
  if (!spill_dir_.empty()) {
    // Best effort: if the directory cannot be created, every save/load
    // simply fails, which the spill path already treats as a miss.
    std::error_code ec;
    std::filesystem::create_directories(spill_dir_, ec);
  }
}

PrecomputeCache::~PrecomputeCache() {
  if (spill_dir_.empty()) return;
  {
    core::MutexLock lock(mu_);
    for (const auto& [key, entry] : entries_) {
      if (!entry.ready) continue;
      pending_spills_.push_back({key, entry.fingerprint, entry.future.get()});
    }
  }
  DrainPendingSpills();
}

std::string PrecomputeCache::SpillPath(const PrecomputeKey& key) const {
  const std::uint64_t hash = io::StableSpillHash(
      key.dataset, key.snapshot_version, ProvenanceOf(key));
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));
  return spill_dir_ + "/ctbus-precompute-" + hex + ".ctbs";
}

PrecomputeCache::PrecomputePtr PrecomputeCache::TryLoadSpill(
    const PrecomputeKey& key, std::uint64_t fingerprint) const {
  auto entry = io::LoadPrecomputeCacheEntry(SpillPath(key));
  if (!entry.has_value()) return nullptr;  // absent/corrupt/stale = miss
  if (entry->dataset != key.dataset ||
      entry->snapshot_version != key.snapshot_version ||
      !(entry->provenance == ProvenanceOf(key))) {
    return nullptr;  // filename collision or foreign file: wrong key = miss
  }
  if (fingerprint != 0 && entry->network_fingerprint != 0 &&
      entry->network_fingerprint != fingerprint) {
    // Same version number over different network bytes — version counters
    // restart at 1 on every process start, so content is the tiebreaker.
    return nullptr;
  }
  return std::make_shared<const core::Precompute>(
      std::move(entry->precompute));
}

void PrecomputeCache::DrainPendingSpills() {
  std::vector<PendingSpill> pending;
  {
    core::MutexLock lock(mu_);
    pending.swap(pending_spills_);
  }
  if (pending.empty()) return;
  std::uint64_t saved = 0;
  for (const PendingSpill& spill : pending) {
    io::PrecomputeCacheEntry entry;
    entry.dataset = spill.key.dataset;
    entry.snapshot_version = spill.key.snapshot_version;
    entry.network_fingerprint = spill.fingerprint;
    entry.provenance = ProvenanceOf(spill.key);
    entry.precompute = *spill.value;
    if (io::SavePrecomputeCacheEntry(entry, SpillPath(spill.key))) ++saved;
  }
  if (saved > 0) {
    core::MutexLock lock(mu_);
    stats_.spill_saves += saved;
  }
}

PrecomputeCache::PrecomputePtr PrecomputeCache::GetOrCompute(
    const PrecomputeKey& key, const ComputeFn& compute, bool* was_hit,
    const FingerprintFn& network_fingerprint) {
  if (capacity_ == 0) {
    {
      core::MutexLock lock(mu_);
      ++stats_.misses;
    }
    if (was_hit != nullptr) *was_hit = false;
    return std::make_shared<const core::Precompute>(compute());
  }

  std::promise<PrecomputePtr> promise;
  std::uint64_t generation = 0;
  {
    core::MutexLock lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      std::shared_future<PrecomputePtr> future = it->second.future;
      lock.Unlock();
      if (was_hit != nullptr) *was_hit = true;
      return future.get();  // ready, or being computed by another caller
    }
    ++stats_.misses;
    generation = next_generation_++;
    lru_.push_front(key);
    entries_.emplace(key, Entry{promise.get_future().share(), lru_.begin(),
                                /*ready=*/false, generation});
    EvictReadyLocked();
  }
  DrainPendingSpills();

  // Miss. With spill enabled, try the disk first: a valid spill file
  // answers without running the compute function at all, which makes it a
  // *hit* for the caller (the same Delta(e) table the in-memory cache
  // would have served, just one restart later). The fingerprint is only
  // evaluated here — never on the hit path.
  const std::uint64_t fingerprint =
      (!spill_dir_.empty() && network_fingerprint) ? network_fingerprint()
                                                   : 0;
  if (!spill_dir_.empty()) {
    if (PrecomputePtr loaded = TryLoadSpill(key, fingerprint)) {
      promise.set_value(loaded);
      {
        core::MutexLock lock(mu_);
        const auto it = entries_.find(key);
        if (it != entries_.end() && it->second.generation == generation) {
          it->second.ready = true;
          it->second.bytes = loaded->ApproxBytes();
          it->second.fingerprint = fingerprint;
          resident_bytes_ += it->second.bytes;
          ++stats_.spill_loads;
          EvictReadyLocked();
        }
      }
      DrainPendingSpills();
      if (was_hit != nullptr) *was_hit = true;
      return loaded;
    }
  }

  if (was_hit != nullptr) *was_hit = false;
  try {
    PrecomputePtr result =
        std::make_shared<const core::Precompute>(compute());
    promise.set_value(result);
    {
      core::MutexLock lock(mu_);
      const auto it = entries_.find(key);
      if (it != entries_.end() && it->second.generation == generation) {
        it->second.ready = true;
        it->second.bytes = result->ApproxBytes();
        it->second.fingerprint = fingerprint;
        resident_bytes_ += it->second.bytes;
        EvictReadyLocked();  // limits may have been exceeded while in flight
      }
    }
    DrainPendingSpills();
    return result;
  } catch (...) {
    promise.set_exception(std::current_exception());
    core::MutexLock lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end() && it->second.generation == generation) {
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
    }
    throw;
  }
}

void PrecomputeCache::EvictReadyLocked() {
  std::size_t resident = entries_.size();
  // The walk stops at lru_.begin(): the MRU entry is never evicted, so a
  // single entry larger than the whole byte budget is still admitted and
  // serves hits until the next insertion displaces it from the MRU slot.
  const auto over_limit = [&] {
    return resident > capacity_ ||
           (max_bytes_ > 0 && resident_bytes_ > max_bytes_);
  };
  auto candidate = lru_.end();
  while (over_limit() && candidate != lru_.begin()) {
    --candidate;  // walk tail -> head, skipping in-flight entries
    if (candidate == lru_.begin()) break;  // reached the MRU entry
    const auto it = entries_.find(*candidate);
    if (it == entries_.end() || !it->second.ready) continue;
    resident_bytes_ -= it->second.bytes;
    stats_.evicted_bytes += it->second.bytes;
    if (!spill_dir_.empty()) {
      // Save on evict: queue the value here (future.get() on a ready
      // entry never blocks); the file write happens after mu_ is
      // released, in DrainPendingSpills.
      pending_spills_.push_back(
          {it->first, it->second.fingerprint, it->second.future.get()});
    }
    entries_.erase(it);
    candidate = lru_.erase(candidate);
    ++stats_.evictions;
    --resident;
  }
}

std::vector<std::pair<std::uint64_t, PrecomputeCache::PrecomputePtr>>
PrecomputeCache::ReadySiblings(const PrecomputeKey& key) const {
  std::vector<std::pair<std::uint64_t, PrecomputePtr>> siblings;
  {
    core::MutexLock lock(mu_);
    for (const auto& [resident_key, entry] : entries_) {
      if (!entry.ready) continue;
      if (resident_key.snapshot_version == key.snapshot_version) continue;
      PrecomputeKey probe = resident_key;
      probe.snapshot_version = key.snapshot_version;
      if (!(probe == key)) continue;
      siblings.emplace_back(resident_key.snapshot_version,
                            entry.future.get());
    }
  }
  std::sort(siblings.begin(), siblings.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return siblings;
}

bool PrecomputeCache::Contains(const PrecomputeKey& key) const {
  core::MutexLock lock(mu_);
  return entries_.count(key) > 0;
}

PrecomputeCache::PrecomputePtr PrecomputeCache::Peek(
    const PrecomputeKey& key) const {
  core::MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.ready) return nullptr;
  return it->second.future.get();  // ready => never blocks
}

std::vector<PrecomputeKey> PrecomputeCache::KeysByRecency() const {
  core::MutexLock lock(mu_);
  return {lru_.begin(), lru_.end()};
}

void PrecomputeCache::Clear() {
  core::MutexLock lock(mu_);
  entries_.clear();
  lru_.clear();
  resident_bytes_ = 0;
  // Clear drops state, it does not persist it: queued spills die with the
  // entries (an explicit Clear means "forget", including on disk-bound
  // copies not yet written).
  pending_spills_.clear();
}

std::size_t PrecomputeCache::size() const {
  core::MutexLock lock(mu_);
  return entries_.size();
}

std::size_t PrecomputeCache::resident_bytes() const {
  core::MutexLock lock(mu_);
  return resident_bytes_;
}

PrecomputeCache::Stats PrecomputeCache::stats() const {
  core::MutexLock lock(mu_);
  Stats stats = stats_;
  stats.resident_bytes = resident_bytes_;
  return stats;
}

}  // namespace ctbus::service
