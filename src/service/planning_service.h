// Sharded, batched, priority-aware planning service: per-dataset worker
// pools answering CT-Bus planning queries against versioned network
// snapshots, with a shared precompute cache and an async commit pipeline.
//
// Request lifecycle:
//   Submit(PlanRequest) -> the request's *dataset shard* (its own bounded
//   two-level priority queue + worker pool) -> a worker dequeues the
//   highest-priority request and, for sweep traffic, gathers every queued
//   request with the same batch key into one batch -> resolve snapshot
//   (SnapshotStore) once per batch -> fetch/compute precompute
//   (PrecomputeCache) once per batch -> build a private PlanningContext
//   per request -> run the requested planner -> fulfill each future with
//   PlanResult + stats.
//
// Sharding: every dataset registered with RegisterDataset gets its own
// worker pool and queue, so a flood of traffic against one hot city can
// never starve queries against another. The shards share one
// OverflowPolicy: Submit either blocks (default) or throws when a shard's
// queue is full.
//
// Priorities: requests are either interactive (default) or sweep
// (ScenarioRunner submits at sweep priority). Workers always drain the
// interactive queue first, and only sweep requests are batched, so an
// interactive request is never stuck behind more than the sweep batches
// already in flight (at most one per worker of its shard).
//
// Batching: queued sweep requests whose precompute resolves identically —
// same (dataset, snapshot version as submitted, tau, precompute-estimator
// params) — execute as one batch on one worker: the snapshot and the
// precompute are resolved once and feed every member, amortizing cache
// misses even when the cache is disabled. Members still build private
// PlanningContexts, so batched results are bit-identical to serial runs.
//
// Commits: Commit applies a result synchronously; CommitAsync enqueues it
// on a dedicated commit thread and returns a future of the new version.
// Either way readers keep serving the prior snapshot — SnapshotStore
// publishes copy-on-write — and async commits apply in submission order,
// so they stack exactly like sequential Commit calls.
//
// Memory governance: the precompute cache evicts by a byte budget
// (ServiceOptions::cache_max_bytes, entry count as a secondary limit) and
// every commit is followed by a SnapshotRetentionPolicy pass over the
// dataset's snapshot store (keep-latest-K + byte budget). Versions pinned
// by queued explicit-version requests or pending async commits, and
// versions with resident precompute-cache entries (warm-start donors,
// in-flight derives), are never pruned and keep their lineage — so
// budgets only ever change recompute cost and stats, never planning
// results. Budgets are deliberately NOT part of PrecomputeKey or batch
// keys: two services differing only in budgets produce bit-identical
// plans.
//
// Observability: the service owns an obs::MetricsRegistry (counters that
// mirror ServiceStats exactly, per-phase/per-priority latency histograms,
// per-shard queue-depth gauges — all lock-free on the record path) and an
// obs::TraceLog span recorder (queue-wait -> batch-assembly ->
// precompute-resolve -> context-build -> plan-search -> commit, one trace
// id per request, bounded ring, JSON-lines export). MetricsSnapshot()
// merges the registry with read-time views of the precompute cache and
// each shard's snapshot store; WriteMetricsJson serializes it. Tracing is
// off by default and costs one branch when off; neither metrics nor
// tracing ever changes a planning result.
//
// Every worker builds its own PlanningContext, so queries never share
// mutable state: results are bit-identical to running the same requests
// serially (the estimators are deterministic by construction). Snapshots
// are held via shared_ptr for the duration of a query, so commits can
// advance the city underneath without blocking or corrupting in-flight
// work.
#ifndef CTBUS_SERVICE_PLANNING_SERVICE_H_
#define CTBUS_SERVICE_PLANNING_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/eta.h"
#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "core/options.h"
#include "core/planner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/precompute_cache.h"
#include "service/snapshot_store.h"

namespace ctbus::service {

/// Two-level request priority. Workers drain every interactive request
/// before touching sweep traffic, so exploratory parameter sweeps cannot
/// starve interactive what-if queries.
enum class Priority {
  kInteractive = 0,
  kSweep = 1,
};

/// What Submit does when the target dataset shard's queue is full. The
/// policy is shared by every shard.
enum class OverflowPolicy {
  /// Block the submitting thread until the shard has room (backpressure).
  kBlock,
  /// Throw std::runtime_error immediately (load shedding).
  kReject,
};

struct ServiceOptions {
  /// Worker pool size *per dataset shard*. Every RegisterDataset call
  /// spawns this many dedicated workers for that dataset. 0 means
  /// std::thread::hardware_concurrency().
  /// ctbus-lint: key-exempt(service topology knob; requests are keyed per dataset+options, not per pool size)
  int num_threads = 1;
  /// Bounded request queue per shard (interactive + sweep combined);
  /// overflow_policy decides what Submit does at capacity.
  /// ctbus-lint: key-exempt(admission control, never reaches the planner)
  std::size_t queue_capacity = 256;
  /// Precompute cache entries (0 disables caching).
  /// ctbus-lint: key-exempt(cache sizing changes hit rate, not entry identity)
  std::size_t cache_capacity = 16;
  /// Byte budget for the precompute cache: summed
  /// core::Precompute::ApproxBytes of resident ready entries (0 =
  /// unlimited). The entry-count capacity stays as a secondary limit;
  /// in-flight entries are never evicted, and a single entry larger than
  /// the whole budget is still admitted (see service/precompute_cache.h).
  /// ctbus-lint: key-exempt(cache sizing changes hit rate, not entry identity)
  std::size_t cache_max_bytes = 0;
  /// Directory for the precompute cache's disk spill ("" = disabled):
  /// ready entries are serialized on eviction (and at service teardown)
  /// and misses are first answered from disk, so a restarted service
  /// serves its first query without a single Dijkstra or Lanczos call.
  /// Spill files are keyed by PrecomputeKey *content* via a stable hash —
  /// the path only says where the bytes live, never what they are, and a
  /// stale or foreign file is a plain miss (see service/precompute_cache.h).
  /// ctbus-lint: key-exempt(on-disk artifacts are keyed by PrecomputeKey content, not by path; the directory changes where bytes persist, never what a key computes to)
  std::string cache_spill_dir;
  /// Snapshot retention applied to a dataset's SnapshotStore after every
  /// Commit / CommitAsync (defaults keep everything — prior behavior).
  /// RegisterDataset can override per dataset. Pruning never changes
  /// planning results: pinned and cache-resident versions are protected,
  /// and a request against a genuinely pruned version fails the same way
  /// an unknown version always has.
  /// ctbus-lint: key-exempt(retention prunes history; protected versions guarantee result-neutrality)
  SnapshotRetentionPolicy retention;
  /// Shared across shards; see OverflowPolicy.
  /// ctbus-lint: key-exempt(admission control, never reaches the planner)
  OverflowPolicy overflow_policy = OverflowPolicy::kBlock;
  /// Upper bound on how many same-key sweep requests one worker executes
  /// per dequeue (1 disables batching). Interactive requests are never
  /// batched: they are latency-critical, and concurrent same-key misses
  /// are already deduplicated inside PrecomputeCache.
  /// ctbus-lint: key-exempt(batching groups same-key requests; it cannot mix keys by construction)
  std::size_t max_batch_size = 8;
  /// Construct the service with every shard's workers parked: queued
  /// requests only start executing after Start(). Lets tests (and bulk
  /// loaders) enqueue a deterministic backlog, then observe strict
  /// priority/batch drain order.
  /// ctbus-lint: key-exempt(lifecycle toggle, no effect on results)
  bool start_paused = false;
  /// On a precompute-cache miss, derive the precompute from a resident
  /// ancestor version (PlanningContext::DerivePrecompute) instead of
  /// recomputing from scratch, when the snapshot store can produce the
  /// delta. Disable to force every miss down the from-scratch path (A/B
  /// measurement, paranoia).
  /// ctbus-lint: key-exempt(derive-vs-scratch produces the same precompute for deterministic estimators; stochastic carry error is bounded by max_warm_start_depth)
  bool warm_start_precompute = true;
  /// Bound on the stochastic path's carry-error compounding: a donor whose
  /// derivation chain is already this deep is not derived from again (the
  /// service falls back to an older shallower donor, or from scratch).
  /// From-scratch donors are always preferred when resident, so chains
  /// normally stay at depth 1; must be >= 1.
  /// ctbus-lint: key-exempt(derivation-chain bound, not a precompute input)
  int max_warm_start_depth = 8;
  /// Record service metrics (counters mirroring ServiceStats, per-phase /
  /// per-priority latency histograms, shard queue-depth gauges) into the
  /// service's MetricsRegistry. The record path is lock-free atomics; the
  /// hot-path overhead target is < 2% (bench_service_throughput's
  /// "metrics overhead" section measures it). Disabling leaves every
  /// registry instrument at zero — MetricsSnapshot() then reports only
  /// the always-on cache / snapshot-store views. Metrics NEVER affect
  /// planning results either way.
  /// ctbus-lint: key-exempt(observability toggle, result-neutral by contract)
  bool enable_metrics = true;
  /// Record per-request phase spans (queue-wait, batch-assembly,
  /// precompute-resolve, context-build, plan-search, commit) into a
  /// bounded in-memory ring (trace_log().Dump exports JSON lines). Off by
  /// default; when off the only cost is one branch per potential span.
  /// Flippable at runtime via trace_log().set_enabled(). Tracing NEVER
  /// affects planning results.
  /// ctbus-lint: key-exempt(observability toggle, result-neutral by contract)
  bool enable_tracing = false;
  /// Span ring-buffer capacity; past it the oldest spans are overwritten.
  /// ctbus-lint: key-exempt(observability sizing, result-neutral by contract)
  std::size_t trace_capacity = 4096;
};

struct PlanRequest {
  /// Name of a dataset previously registered with RegisterDataset.
  std::string dataset;
  /// Planner knobs, carried verbatim to the worker: the precompute fields
  /// (tau, precompute estimator, perturbation toggle) feed the cache/batch
  /// key, the sweepables (k, w, Tn, sn, planner variant toggles) stay free,
  /// and the thread counts (precompute_threads, eta_threads — each request
  /// may size its own frontier fan-out) are excluded from both keys because
  /// results are bit-identical at any setting (core/options.h).
  core::CtBusOptions options;
  core::Planner planner = core::Planner::kEtaPre;
  /// Snapshot to plan against; 0 = latest at execution time.
  std::uint64_t snapshot_version = 0;
  /// Queue class inside the dataset shard; see Priority.
  Priority priority = Priority::kInteractive;
};

/// Per-request observability.
struct RequestStats {
  /// The version actually planned against (resolved from 0 = latest).
  std::uint64_t snapshot_version = 0;
  bool precompute_cache_hit = false;
  /// True if this request's cache miss was served by warm-starting from an
  /// ancestor version's precompute rather than computing from scratch
  /// (always false on a cache hit).
  bool precompute_derived = false;
  /// Provenance and phase timings of the precompute this request planned
  /// over (shared with every other request on the same key): derivation
  /// depth, recomputed/carried Delta(e) counts, threads used.
  core::PrecomputeStats precompute;
  double queue_seconds = 0.0;       // Submit -> worker pickup
  double precompute_seconds = 0.0;  // cache lookup incl. compute on miss
  double context_seconds = 0.0;     // PlanningContext::BuildWithPrecompute
  double plan_seconds = 0.0;        // planner search
  int worker_id = -1;
  /// Number of requests in the batch this one executed in (1 = unbatched).
  /// Non-leader members report precompute_cache_hit = true: the leader's
  /// resolution fed them without touching the cache.
  std::size_t batch_size = 1;
  /// Service-wide execution pickup order (0-based): assigned when a worker
  /// starts the request, so tests can assert drain order (interactive
  /// before sweep) without racing on wall-clock time.
  std::uint64_t execute_sequence = 0;
  /// Trace id shared by every span this request emitted (0 when tracing
  /// was disabled at submit time). Commit spans reuse it, so a request's
  /// whole lifecycle joins on one id in the trace dump.
  std::uint64_t trace_id = 0;
};

struct ServiceResult {
  core::PlanResult plan;
  /// The request as executed, with snapshot_version resolved (never 0).
  /// Commit reads the dataset and precompute parameters from here, so a
  /// result can never be committed against the wrong universe.
  PlanRequest request;
  RequestStats stats;
};

class PlanningService {
 public:
  explicit PlanningService(const ServiceOptions& options);
  ~PlanningService();  // calls Shutdown()

  PlanningService(const PlanningService&) = delete;
  PlanningService& operator=(const PlanningService&) = delete;

  /// Registers a city under `name`, seeding its SnapshotStore at version 1
  /// and spawning the dataset's worker-pool shard. Registering an existing
  /// name (or registering after Shutdown) throws. The dataset inherits
  /// ServiceOptions::retention; the overload pins a per-dataset policy
  /// (DatasetCatalog uses it for descriptor-supplied budgets).
  void RegisterDataset(const std::string& name, graph::RoadNetwork road,
                       graph::TransitNetwork transit);
  void RegisterDataset(const std::string& name, graph::RoadNetwork road,
                       graph::TransitNetwork transit,
                       const SnapshotRetentionPolicy& retention);

  /// Registers a gen:: preset by registry name (see gen::DatasetNames()).
  void RegisterPreset(const std::string& name, double scale = 1.0);

  bool HasDataset(const std::string& name) const CTBUS_EXCLUDES(datasets_mu_);
  std::vector<std::string> DatasetNames() const CTBUS_EXCLUDES(datasets_mu_);

  std::uint64_t LatestVersion(const std::string& dataset) const;
  SnapshotPtr Snapshot(const std::string& dataset,
                       std::uint64_t version = 0) const;

  /// Releases workers parked by ServiceOptions::start_paused (no-op when
  /// the service started running, or after Shutdown).
  void Start();

  /// Enqueues a request on its dataset's shard; at capacity, blocks or
  /// throws per OverflowPolicy. Throws std::invalid_argument for an
  /// unknown dataset and std::runtime_error after Shutdown. Errors during
  /// execution (e.g. unknown snapshot version) surface through the future.
  std::future<ServiceResult> Submit(PlanRequest request);

  /// Submit + wait. Convenience for callers without their own pipeline.
  /// Do not call while the service is paused (it would deadlock by
  /// design: nothing drains the queue before Start()).
  ServiceResult Plan(PlanRequest request);

  /// Commits a result's route to its dataset, advancing the snapshot
  /// version. The dataset, precompute parameters, and planned-against
  /// version come from the result itself (ServiceResult::request), so the
  /// route's edge ids are always mapped through the universe they were
  /// planned in. The route is applied on top of the *latest* version, so
  /// sequential commits stack even when their plans were computed against
  /// the same older snapshot. Returns the new version id. In-flight
  /// queries against older versions are unaffected; later latest-version
  /// requests see the new city.
  std::uint64_t Commit(const ServiceResult& result);

  /// Commit, but applied off the caller thread by the service's dedicated
  /// commit worker. Async commits apply strictly in CommitAsync-call
  /// order (FIFO), so a sequence of CommitAsync calls stacks exactly like
  /// the same sequence of Commit calls; readers keep serving the prior
  /// snapshot until each new version is published. Errors surface through
  /// the returned future. Throws std::runtime_error after Shutdown.
  std::future<std::uint64_t> CommitAsync(ServiceResult result);

  PrecomputeCache::Stats cache_stats() const { return cache_.stats(); }

  struct ServiceStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    /// Submissions refused by OverflowPolicy::kReject (not counted in
    /// `submitted`).
    std::uint64_t rejected = 0;
    /// Cache misses answered from scratch vs. derived from an ancestor
    /// version's precompute (Execute and Commit both count).
    std::uint64_t precomputes_from_scratch = 0;
    std::uint64_t precomputes_derived = 0;
    /// Multi-request batches executed, and how many requests rode along in
    /// them beyond their leaders (each saved one precompute resolution).
    std::uint64_t batches = 0;
    std::uint64_t batched_requests = 0;
    /// Commits applied by the async pipeline (CommitAsync only).
    std::uint64_t async_commits = 0;
    /// Snapshot versions pruned / lineage records trimmed by the
    /// post-commit retention passes, summed across datasets.
    std::uint64_t snapshots_pruned = 0;
    std::uint64_t lineage_trimmed = 0;
  };
  ServiceStats service_stats() const CTBUS_EXCLUDES(stats_mu_);

  /// Per-dataset memory accounting, read under the shard's lock.
  struct DatasetMemoryStats {
    /// Resident snapshot versions and their summed ApproxBytes.
    std::size_t resident_versions = 0;
    std::size_t snapshot_bytes = 0;
    /// Lineage records currently resident in the store.
    std::size_t lineage_records = 0;
    /// Distinct versions pinned by queued requests / pending commits.
    std::size_t pinned_versions = 0;
    /// Cumulative retention-pass removals for this dataset.
    std::uint64_t snapshots_pruned = 0;
    std::uint64_t lineage_trimmed = 0;
  };
  DatasetMemoryStats dataset_memory_stats(const std::string& dataset) const;

  /// One deterministically ordered (name-sorted) view of every service
  /// metric: the registry's counters / gauges / histograms (exactly
  /// mirroring ServiceStats when metrics are enabled — reconciliation is
  /// tested) plus always-on views computed at read time: `cache.*` from
  /// the precompute cache and `dataset.<name>.*` from each shard's
  /// snapshot store. Metric names are stable API — bench JSON, dashboards,
  /// and tests key on them; rename only with a deprecation note.
  obs::MetricsSnapshot MetricsSnapshot() const;

  /// MetricsSnapshot() serialized as one JSON object (see
  /// obs::WriteMetricsJson for the format).
  void WriteMetricsJson(std::ostream& out) const;

  /// The span recorder (enable/disable at runtime, Dump for JSON lines).
  /// Initial state and capacity come from ServiceOptions.
  obs::TraceLog& trace_log() { return trace_; }
  const obs::TraceLog& trace_log() const { return trace_; }

  /// Worker threads per dataset shard (the resolved ServiceOptions value).
  int num_threads() const { return threads_per_shard_; }
  /// Total workers across all registered dataset shards.
  int num_workers() const;

  /// Drains every shard's queue and the commit pipeline, waits for
  /// in-flight work, joins all pools. Further Submits throw. Idempotent;
  /// called by the destructor.
  void Shutdown();

 private:
  struct Task {
    PlanRequest request;
    std::promise<ServiceResult> promise;
    std::chrono::steady_clock::time_point submit_time;
    /// Batch identity, precomputed at Submit for sweep requests only
    /// (interactive requests never batch), so the worker's queue scan
    /// under the shard mutex is a plain field comparison instead of
    /// constructing keys per scanned task.
    PrecomputeKey batch_key;
    /// Snapshot version pinned against retention while this task is
    /// queued (0 = none; only explicit-version requests pin — "latest"
    /// can never be pruned). Released by ExecuteBatch once the snapshot
    /// shared_ptr is resolved.
    std::uint64_t pinned_version = 0;
    /// Span correlation (0 = tracing was off at Submit): the id every
    /// phase span of this request carries, and where on the trace
    /// timeline the queue-wait span starts.
    std::uint64_t trace_id = 0;
    double submit_trace_offset = 0.0;
  };

  /// One dataset's serving state: its snapshot store plus a private
  /// two-level queue and worker pool. Shards never share queue locks, so
  /// backpressure on one dataset cannot block submitters to another.
  struct Shard {
    explicit Shard(std::shared_ptr<SnapshotStore> snapshot_store)
        : store(std::move(snapshot_store)) {}

    std::shared_ptr<SnapshotStore> store;
    /// Retention enforced after each commit to this dataset.
    SnapshotRetentionPolicy retention;
    core::Mutex mu;
    core::CondVar not_empty;
    core::CondVar not_full;
    core::CondVar workers_done;
    std::deque<Task> interactive CTBUS_GUARDED_BY(mu);  // drained first
    std::deque<Task> sweep CTBUS_GUARDED_BY(mu);  // batched by key
    int live_workers CTBUS_GUARDED_BY(mu) = 0;
    std::vector<std::thread> workers CTBUS_GUARDED_BY(mu);
    /// version -> pin count for queued explicit-version requests and
    /// pending async commits; pinned versions survive retention passes.
    std::unordered_map<std::uint64_t, int> version_pins CTBUS_GUARDED_BY(mu);
    /// Cumulative retention removals for this dataset.
    std::uint64_t snapshots_pruned CTBUS_GUARDED_BY(mu) = 0;
    std::uint64_t lineage_trimmed CTBUS_GUARDED_BY(mu) = 0;
    /// Live "service.shard.<dataset>.queue_depth" gauge. Written once at
    /// RegisterDataset before the shard is published, const afterwards
    /// (the Gauge itself records through relaxed atomics), so the pointer
    /// needs no guard.
    obs::Gauge* queue_depth_gauge = nullptr;

    std::size_t queued() const CTBUS_REQUIRES(mu) {
      return interactive.size() + sweep.size();
    }
  };

  struct CommitTask {
    ServiceResult result;
    std::promise<std::uint64_t> promise;
    /// The planned-against version, pinned from CommitAsync until the
    /// commit applies, so retention cannot prune the snapshot the
    /// result's edge ids resolve through. The shard is captured so the
    /// unpin cannot race a dataset lookup.
    std::shared_ptr<Shard> shard;
    std::uint64_t pinned_version = 0;
  };

  void WorkerLoop(Shard* shard, int worker_id) CTBUS_EXCLUDES(shard->mu);
  void CommitLoop() CTBUS_EXCLUDES(commit_mu_);
  /// Dequeues the next batch from `shard` (caller holds shard->mu):
  /// the front interactive task alone, or the front sweep task plus every
  /// queued sweep task sharing its batch key (up to max_batch_size_).
  std::vector<Task> NextBatchLocked(Shard* shard) CTBUS_REQUIRES(shard->mu);
  /// Resolves snapshot + precompute once, then plans every task of the
  /// batch with a private context, fulfilling each task's promise.
  void ExecuteBatch(Shard* shard, std::vector<Task> batch, int worker_id)
      CTBUS_EXCLUDES(shard->mu);
  std::uint64_t CommitNow(const ServiceResult& result);
  std::shared_ptr<SnapshotStore> Store(const std::string& dataset) const
      CTBUS_EXCLUDES(datasets_mu_);
  std::shared_ptr<Shard> FindShard(const std::string& dataset) const
      CTBUS_EXCLUDES(datasets_mu_);

  /// Decrements `version`'s pin count on `shard` (no-op for version 0).
  void UnpinVersion(Shard* shard, std::uint64_t version)
      CTBUS_EXCLUDES(shard->mu);
  /// Same, with shard->mu already held by the caller.
  void UnpinVersionLocked(Shard* shard, std::uint64_t version)
      CTBUS_REQUIRES(shard->mu);
  /// Runs the shard's retention policy over its snapshot store,
  /// protecting pinned versions and every version with a resident
  /// precompute-cache entry for `dataset`. Called after each commit;
  /// no-op when the policy is unlimited. Lock order: takes shard->mu and
  /// holds it ACROSS the store's ApplyRetention (shard -> store); the
  /// CTBUS_EXCLUDES here plus the EXCLUDES on every SnapshotStore entry
  /// point make the inverse order (store lock held while taking
  /// shard->mu) inexpressible without a compile error.
  void ApplyRetention(const std::string& dataset, Shard* shard)
      CTBUS_EXCLUDES(shard->mu);

  /// Cache lookup with warm start: on a miss, tries to derive from the
  /// nearest resident ancestor version before computing from scratch.
  PrecomputeCache::PrecomputePtr ResolvePrecompute(
      SnapshotStore& store, const std::string& dataset,
      const NetworkSnapshot& snapshot, const core::CtBusOptions& options,
      bool* cache_hit, bool* derived);

  /// The registry instruments the hot path records through, resolved once
  /// at construction. Counter names mirror ServiceStats field-for-field;
  /// latency histograms are indexed [phase][priority class].
  struct PhaseHistograms {
    obs::Histogram* queue = nullptr;
    obs::Histogram* precompute = nullptr;  // batch leaders only
    obs::Histogram* context = nullptr;
    obs::Histogram* plan = nullptr;
    obs::Histogram* total = nullptr;  // queue + resolve + context + plan
  };
  struct ServiceCounters {
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* precomputes_from_scratch = nullptr;
    obs::Counter* precomputes_derived = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* batched_requests = nullptr;
    obs::Counter* commits = nullptr;  // CommitNow successes (sync + async)
    obs::Counter* async_commits = nullptr;
    obs::Counter* snapshots_pruned = nullptr;
    obs::Counter* lineage_trimmed = nullptr;
  };

  /// Records one completed request's phase timings (no-op when metrics
  /// are disabled). Only batch leaders record into the precompute
  /// histogram — members ride on the leader's resolution and would skew
  /// it with zeros.
  void RecordRequestLatency(Priority priority, const RequestStats& stats,
                            bool batch_leader);

  const bool warm_start_precompute_;
  const int max_warm_start_depth_;
  /// Retention for datasets registered without a per-dataset policy.
  const SnapshotRetentionPolicy default_retention_;
  const bool metrics_enabled_;
  obs::MetricsRegistry metrics_;
  obs::TraceLog trace_;
  ServiceCounters counters_;
  PhaseHistograms latency_[2];  // [static_cast<int>(Priority)]
  PrecomputeCache cache_;
  const std::size_t queue_capacity_;
  const std::size_t max_batch_size_;
  const OverflowPolicy overflow_policy_;
  int threads_per_shard_ = 1;

  /// True until Start(); workers park instead of dequeuing. Read inside
  /// shard-mu-guarded wait predicates. Start() flips it, then takes and
  /// releases every shard's mu before notifying — that empty critical
  /// section is what guarantees no parked worker misses the wakeup (a
  /// worker that read paused_ == true is either still holding mu, or will
  /// re-check the predicate on the notify). Do not drop it.
  std::atomic<bool> paused_{false};
  /// Set by Shutdown (under every shard's mu) to drain-and-join.
  std::atomic<bool> shutting_down_{false};

  mutable core::Mutex datasets_mu_;
  std::unordered_map<std::string, std::shared_ptr<Shard>> shards_
      CTBUS_GUARDED_BY(datasets_mu_);

  std::atomic<std::uint64_t> execute_sequence_{0};
  std::atomic<int> next_worker_id_{0};

  core::Mutex commit_mu_;
  core::CondVar commit_cv_;
  std::deque<CommitTask> commit_queue_ CTBUS_GUARDED_BY(commit_mu_);
  bool commit_shutdown_ CTBUS_GUARDED_BY(commit_mu_) = false;
  std::thread commit_worker_ CTBUS_GUARDED_BY(commit_mu_);

  mutable core::Mutex stats_mu_;
  ServiceStats service_stats_ CTBUS_GUARDED_BY(stats_mu_);
};

}  // namespace ctbus::service

#endif  // CTBUS_SERVICE_PLANNING_SERVICE_H_
