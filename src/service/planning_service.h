// Concurrent planning service: a fixed worker pool answering CT-Bus
// planning queries against versioned network snapshots, with a shared
// precompute cache.
//
// Request lifecycle:
//   Submit(PlanRequest) -> bounded queue -> worker picks it up ->
//   resolve snapshot (SnapshotStore) -> fetch/compute precompute
//   (PrecomputeCache) -> build a private PlanningContext -> run the
//   requested planner -> fulfill the future with PlanResult + stats.
//
// Every worker builds its own PlanningContext, so queries never share
// mutable state: results are bit-identical to running the same requests
// serially (the estimators are deterministic by construction). Snapshots
// are held via shared_ptr for the duration of a query, so CommitRoute can
// advance the city underneath without blocking or corrupting in-flight
// work.
#ifndef CTBUS_SERVICE_PLANNING_SERVICE_H_
#define CTBUS_SERVICE_PLANNING_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/eta.h"
#include "core/options.h"
#include "core/planner.h"
#include "service/precompute_cache.h"
#include "service/snapshot_store.h"

namespace ctbus::service {

struct ServiceOptions {
  /// Worker pool size. 0 means std::thread::hardware_concurrency().
  int num_threads = 1;
  /// Bounded request queue; Submit blocks while the queue is full.
  std::size_t queue_capacity = 256;
  /// Precompute cache entries (0 disables caching).
  std::size_t cache_capacity = 16;
  /// On a precompute-cache miss, derive the precompute from a resident
  /// ancestor version (PlanningContext::DerivePrecompute) instead of
  /// recomputing from scratch, when the snapshot store can produce the
  /// delta. Disable to force every miss down the from-scratch path (A/B
  /// measurement, paranoia).
  bool warm_start_precompute = true;
  /// Bound on the stochastic path's carry-error compounding: a donor whose
  /// derivation chain is already this deep is not derived from again (the
  /// service falls back to an older shallower donor, or from scratch).
  /// From-scratch donors are always preferred when resident, so chains
  /// normally stay at depth 1; must be >= 1.
  int max_warm_start_depth = 8;
};

struct PlanRequest {
  /// Name of a dataset previously registered with RegisterDataset.
  std::string dataset;
  core::CtBusOptions options;
  core::Planner planner = core::Planner::kEtaPre;
  /// Snapshot to plan against; 0 = latest at execution time.
  std::uint64_t snapshot_version = 0;
};

/// Per-request observability.
struct RequestStats {
  /// The version actually planned against (resolved from 0 = latest).
  std::uint64_t snapshot_version = 0;
  bool precompute_cache_hit = false;
  /// True if this request's cache miss was served by warm-starting from an
  /// ancestor version's precompute rather than computing from scratch
  /// (always false on a cache hit).
  bool precompute_derived = false;
  /// Provenance and phase timings of the precompute this request planned
  /// over (shared with every other request on the same key): derivation
  /// depth, recomputed/carried Delta(e) counts, threads used.
  core::PrecomputeStats precompute;
  double queue_seconds = 0.0;       // Submit -> worker pickup
  double precompute_seconds = 0.0;  // cache lookup incl. compute on miss
  double context_seconds = 0.0;     // PlanningContext::BuildWithPrecompute
  double plan_seconds = 0.0;        // planner search
  int worker_id = -1;
};

struct ServiceResult {
  core::PlanResult plan;
  /// The request as executed, with snapshot_version resolved (never 0).
  /// Commit reads the dataset and precompute parameters from here, so a
  /// result can never be committed against the wrong universe.
  PlanRequest request;
  RequestStats stats;
};

class PlanningService {
 public:
  explicit PlanningService(const ServiceOptions& options);
  ~PlanningService();  // calls Shutdown()

  PlanningService(const PlanningService&) = delete;
  PlanningService& operator=(const PlanningService&) = delete;

  /// Registers a city under `name`, seeding its SnapshotStore at version 1.
  /// Registering an existing name throws.
  void RegisterDataset(const std::string& name, graph::RoadNetwork road,
                       graph::TransitNetwork transit);

  /// Registers a gen:: preset by registry name (see gen::DatasetNames()).
  void RegisterPreset(const std::string& name, double scale = 1.0);

  bool HasDataset(const std::string& name) const;
  std::vector<std::string> DatasetNames() const;

  std::uint64_t LatestVersion(const std::string& dataset) const;
  SnapshotPtr Snapshot(const std::string& dataset,
                       std::uint64_t version = 0) const;

  /// Enqueues a request; blocks while the queue is full. Throws
  /// std::invalid_argument for an unknown dataset and std::runtime_error
  /// after Shutdown. Errors during execution (e.g. unknown snapshot
  /// version) surface through the future.
  std::future<ServiceResult> Submit(PlanRequest request);

  /// Submit + wait. Convenience for callers without their own pipeline.
  ServiceResult Plan(PlanRequest request);

  /// Commits a result's route to its dataset, advancing the snapshot
  /// version. The dataset, precompute parameters, and planned-against
  /// version come from the result itself (ServiceResult::request), so the
  /// route's edge ids are always mapped through the universe they were
  /// planned in. The route is applied on top of the *latest* version, so
  /// sequential commits stack even when their plans were computed against
  /// the same older snapshot. Returns the new version id. In-flight
  /// queries against older versions are unaffected; later latest-version
  /// requests see the new city.
  std::uint64_t Commit(const ServiceResult& result);

  PrecomputeCache::Stats cache_stats() const { return cache_.stats(); }

  struct ServiceStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    /// Cache misses answered from scratch vs. derived from an ancestor
    /// version's precompute (Execute and Commit both count).
    std::uint64_t precomputes_from_scratch = 0;
    std::uint64_t precomputes_derived = 0;
  };
  ServiceStats service_stats() const;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Drains the queue, waits for in-flight work, joins the pool. Further
  /// Submits throw. Idempotent; called by the destructor.
  void Shutdown();

 private:
  struct Task {
    PlanRequest request;
    std::promise<ServiceResult> promise;
    std::chrono::steady_clock::time_point submit_time;
  };

  void WorkerLoop(int worker_id);
  ServiceResult Execute(const PlanRequest& request, int worker_id);
  std::shared_ptr<SnapshotStore> Store(const std::string& dataset) const;

  /// Cache lookup with warm start: on a miss, tries to derive from the
  /// nearest resident ancestor version before computing from scratch.
  PrecomputeCache::PrecomputePtr ResolvePrecompute(
      SnapshotStore& store, const std::string& dataset,
      const NetworkSnapshot& snapshot, const core::CtBusOptions& options,
      bool* cache_hit, bool* derived);

  const bool warm_start_precompute_;
  const int max_warm_start_depth_;
  PrecomputeCache cache_;
  const std::size_t queue_capacity_;

  mutable std::mutex datasets_mu_;
  std::unordered_map<std::string, std::shared_ptr<SnapshotStore>> datasets_;

  std::mutex queue_mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::condition_variable workers_done_;
  std::deque<Task> queue_;
  bool shutting_down_ = false;
  int live_workers_ = 0;  // guarded by queue_mu_

  mutable std::mutex stats_mu_;
  ServiceStats service_stats_;

  std::vector<std::thread> workers_;
};

}  // namespace ctbus::service

#endif  // CTBUS_SERVICE_PLANNING_SERVICE_H_
