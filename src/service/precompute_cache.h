// Shared LRU cache of PlanningContext::RunPrecompute results.
//
// The precompute (plannable-edge universe + Delta(e) increments) is the
// expensive, sweep-invariant part of answering a planning query: it depends
// only on (dataset, snapshot version, tau, precompute-estimator params),
// not on k / w / Tn / sn or the planner. Caching it means a parameter sweep
// of N cells pays for one precompute, and repeated traffic against a hot
// snapshot pays for none.
//
// Thread-safe. Concurrent misses on the same key are deduplicated: the
// first caller computes, later callers block on the same shared_future
// instead of recomputing. Capacity 0 disables caching entirely (every call
// computes, nothing is stored).
//
// Memory governance: eviction is driven by an explicit byte budget
// (`max_bytes`, charged per entry via core::Precompute::ApproxBytes) with
// the entry count capacity kept as a secondary limit. Ready entries are
// evicted LRU-tail-first until both limits hold; in-flight entries are
// never evicted (the miss dedup cannot be broken by memory pressure), and
// the most recently used entry survives even when it alone exceeds the
// budget — a single oversized precompute is admitted, serves hits, and is
// only displaced by the next insertion. Budgets never appear in
// PrecomputeKey: they change *what stays resident*, never *what a key
// computes to*, so results are bit-identical under any budget.
//
// Ownership: values are handed out as shared_ptr<const core::Precompute>.
// Eviction only drops the cache's reference — callers (and the planning
// contexts built over them) keep the object alive for as long as they
// hold the pointer, and the const-ness makes cross-thread sharing safe
// without further locking.
//
// Disk spill (optional): with a spill directory configured, a ready entry
// is serialized to `<dir>/ctbus-precompute-<hash>.ctbs` when it is evicted
// (and when the cache is destroyed), and a miss first tries to load that
// file back before running the compute function — so a restarted process
// serves its first query from disk instead of re-running Dijkstras and
// Lanczos. Files are keyed by io::StableSpillHash over the PrecomputeKey
// content (budgets, thread knobs, and the directory path itself stay out,
// exactly as in-memory), and a loaded file is used only if its recorded
// key fields — and, when provided, the network fingerprint — match the
// request; anything stale, corrupt, or foreign is silently a miss, never
// an error. File writes happen outside the cache mutex.
#ifndef CTBUS_SERVICE_PRECOMPUTE_CACHE_H_
#define CTBUS_SERVICE_PRECOMPUTE_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mutex.h"
#include "core/options.h"
#include "core/planning_context.h"
#include "core/thread_annotations.h"

namespace ctbus::service {

/// Everything RunPrecompute's output depends on. Doubles as the serving
/// layer's *batch identity*: PlanningService groups queued sweep requests
/// whose keys are equal (with snapshot_version taken as submitted) so one
/// snapshot + precompute resolution feeds the whole batch.
///
/// Thread-count knobs (CtBusOptions::precompute_threads, eta_threads) are
/// deliberately NOT key fields: both are bit-identical at any setting, so
/// including them would only fragment the cache — and the batch grouping —
/// across requests that provably produce the same precompute and plans.
/// The pruning knobs (prune_candidates, prune_keep_rank) ARE key fields:
/// pruned entries store an upper bound instead of an estimate, so the
/// table's bytes depend on them (docs/PRECOMPUTE.md). keep_rank is
/// normalized to 0 when pruning is off, so every non-pruning request maps
/// to one key regardless of its (inert) keep_rank setting.
/// tau is stored with signed zero normalized away (MakePrecomputeKey), so
/// equal keys always hash equally.
struct PrecomputeKey {
  std::string dataset;
  std::uint64_t snapshot_version = 0;
  double tau = 0.0;
  int probes = 0;
  int lanczos_steps = 0;
  std::uint64_t seed = 0;
  int probe_kind = 0;
  bool use_perturbation = false;
  bool prune_candidates = false;
  int prune_keep_rank = 0;

  bool operator==(const PrecomputeKey& other) const;
};

/// Extracts the precompute-relevant fields of `options`.
PrecomputeKey MakePrecomputeKey(const std::string& dataset,
                                std::uint64_t snapshot_version,
                                const core::CtBusOptions& options);

/// Hash functor for PrecomputeKey, public so callers can build their own
/// unordered containers over keys (batch accounting, bench bucketing).
struct PrecomputeKeyHash {
  std::size_t operator()(const PrecomputeKey& key) const;
};

class PrecomputeCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// ApproxBytes of the resident *ready* entries right now (in-flight
    /// entries are charged when they become ready).
    std::size_t resident_bytes = 0;
    /// Cumulative ApproxBytes of evicted entries.
    std::uint64_t evicted_bytes = 0;
    /// Evicted entries serialized to the spill directory.
    std::uint64_t spill_saves = 0;
    /// Misses answered from a spill file instead of the compute function.
    std::uint64_t spill_loads = 0;
  };

  using ComputeFn = std::function<core::Precompute()>;
  using PrecomputePtr = std::shared_ptr<const core::Precompute>;
  /// Lazy network-content fingerprint (io::NetworkFingerprint of the
  /// snapshot the key refers to). Only invoked on a miss with the spill
  /// path enabled — encoding whole networks is too expensive for the hit
  /// path. May be null: 0 means "unchecked" on both sides.
  using FingerprintFn = std::function<std::uint64_t()>;

  /// `capacity` bounds resident entries (0 disables caching entirely,
  /// including the spill path); `max_bytes` bounds their summed
  /// ApproxBytes (0 = unlimited); a non-empty `spill_dir` enables disk
  /// spill (the directory is created if missing; if creation fails,
  /// saves and loads simply never succeed).
  explicit PrecomputeCache(std::size_t capacity, std::size_t max_bytes = 0,
                           std::string spill_dir = {});

  /// Spills every ready resident entry to the spill directory (when one
  /// is configured), so a recreated cache over the same directory serves
  /// them as disk hits without requiring an eviction to have happened.
  ~PrecomputeCache();

  PrecomputeCache(const PrecomputeCache&) = delete;
  PrecomputeCache& operator=(const PrecomputeCache&) = delete;

  /// Returns the cached precompute for `key`, computing it with `compute`
  /// on a miss. Sets `*was_hit` (if non-null) to whether the result came
  /// from the cache — a successful spill-file load counts as a hit (the
  /// compute function never ran). Blocks only while the value is being
  /// computed by this or another caller, never while unrelated keys
  /// compute. `network_fingerprint`, when non-null, guards spill loads
  /// against snapshot-version collisions across restarts.
  PrecomputePtr GetOrCompute(const PrecomputeKey& key,
                             const ComputeFn& compute,
                             bool* was_hit = nullptr,
                             const FingerprintFn& network_fingerprint =
                                 nullptr) CTBUS_EXCLUDES(mu_);

  /// Warm-start donor lookup: every *ready* resident entry whose key
  /// matches `key` on all fields except snapshot_version, returned as
  /// (snapshot_version, value) pairs sorted by descending version (the
  /// nearest ancestor first, in the common latest-chain case). In-flight
  /// entries and `key`'s own version are excluded. Does not touch LRU
  /// order — deriving from a donor is not a use of the donor's entry.
  std::vector<std::pair<std::uint64_t, PrecomputePtr>> ReadySiblings(
      const PrecomputeKey& key) const CTBUS_EXCLUDES(mu_);

  /// True if `key` is resident (does not touch LRU order).
  bool Contains(const PrecomputeKey& key) const CTBUS_EXCLUDES(mu_);

  /// The ready value for `key` if resident, else nullptr (in-flight
  /// entries also return nullptr — Peek never blocks). Does not touch
  /// LRU order or hit/miss stats. The serving layer's commit path uses
  /// this to map a result's edge ids through its planned-in universe even
  /// after the planned-against snapshot version was pruned by retention.
  PrecomputePtr Peek(const PrecomputeKey& key) const CTBUS_EXCLUDES(mu_);

  /// Resident keys, most recently used first. For tests and introspection.
  std::vector<PrecomputeKey> KeysByRecency() const CTBUS_EXCLUDES(mu_);

  void Clear() CTBUS_EXCLUDES(mu_);

  std::size_t size() const CTBUS_EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }
  std::size_t max_bytes() const { return max_bytes_; }
  /// The configured spill directory ("" = spill disabled).
  const std::string& spill_dir() const { return spill_dir_; }
  /// The spill file GetOrCompute would read/write for `key` (valid only
  /// when spill is enabled). Exposed for tests and tooling.
  std::string SpillPath(const PrecomputeKey& key) const;
  /// Summed ApproxBytes of resident ready entries.
  std::size_t resident_bytes() const CTBUS_EXCLUDES(mu_);
  Stats stats() const CTBUS_EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_future<PrecomputePtr> future;
    std::list<PrecomputeKey>::iterator lru_it;
    /// In-flight entries (compute still running) are never evicted, so
    /// the same-key miss dedup cannot be broken by capacity pressure.
    bool ready = false;
    /// Distinguishes re-insertions of one key, so a failed compute only
    /// erases its own generation, never a newer healthy entry.
    std::uint64_t generation = 0;
    /// ApproxBytes of the value, charged against max_bytes_ once ready
    /// (0 while in flight — the size is unknown until computed).
    std::size_t bytes = 0;
    /// Network fingerprint recorded when the entry became ready; written
    /// into the entry's spill file on eviction (0 = unchecked).
    std::uint64_t fingerprint = 0;
  };

  /// A ready entry queued for serialization: EvictReadyLocked (and the
  /// destructor) queue under mu_, DrainPendingSpills writes the files
  /// after the lock is released.
  struct PendingSpill {
    PrecomputeKey key;
    std::uint64_t fingerprint = 0;
    PrecomputePtr value;
  };

  /// Evicts ready entries from the LRU tail until within the entry-count
  /// capacity AND the byte budget (or only in-flight entries and the MRU
  /// entry remain). With spill enabled, evicted values are queued on
  /// pending_spills_ for the next DrainPendingSpills. Caller holds mu_.
  void EvictReadyLocked() CTBUS_REQUIRES(mu_);

  /// Writes every queued PendingSpill to its spill file (file I/O happens
  /// with mu_ released; the queue is swapped out under the lock).
  void DrainPendingSpills() CTBUS_EXCLUDES(mu_);

  /// Attempts to answer a miss from `key`'s spill file. Returns nullptr —
  /// a plain miss, never an error — when the file is absent, corrupt,
  /// stale-format, or records a different key or an incompatible network
  /// fingerprint.
  PrecomputePtr TryLoadSpill(const PrecomputeKey& key,
                             std::uint64_t fingerprint) const;

  const std::size_t capacity_;
  const std::size_t max_bytes_;
  const std::string spill_dir_;
  mutable core::Mutex mu_;
  // front = most recently used
  std::list<PrecomputeKey> lru_ CTBUS_GUARDED_BY(mu_);
  std::unordered_map<PrecomputeKey, Entry, PrecomputeKeyHash> entries_
      CTBUS_GUARDED_BY(mu_);
  std::uint64_t next_generation_ CTBUS_GUARDED_BY(mu_) = 0;
  /// Summed Entry::bytes of ready entries.
  std::size_t resident_bytes_ CTBUS_GUARDED_BY(mu_) = 0;
  Stats stats_ CTBUS_GUARDED_BY(mu_);
  std::vector<PendingSpill> pending_spills_ CTBUS_GUARDED_BY(mu_);
};

}  // namespace ctbus::service

#endif  // CTBUS_SERVICE_PRECOMPUTE_CACHE_H_
