// Scenario runner: fans a (k, w, planner) parameter sweep out over the
// PlanningService worker pool against one pinned snapshot.
//
// All cells share the snapshot version resolved at launch, so a concurrent
// CommitRoute cannot split the sweep across city states; and because the
// precompute key is independent of k / w / planner, the whole sweep costs
// one precompute (the first cell misses, every other cell hits the cache).
//
// Cells are submitted at sweep priority by default (SweepSpec::priority):
// the service batches them per precompute key and always serves
// interactive requests first, so a long exploratory sweep cannot starve
// interactive traffic sharing the dataset's shard.
//
// Thread-safety: a ScenarioRunner is a thin stateless fan-out over the
// (thread-safe) PlanningService it borrows; distinct runners may share one
// service, and Run may be called concurrently. The service must outlive
// the runner.
#ifndef CTBUS_SERVICE_SCENARIO_RUNNER_H_
#define CTBUS_SERVICE_SCENARIO_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.h"
#include "service/planning_service.h"

namespace ctbus::service {

struct SweepSpec {
  std::string dataset;
  /// Template for every cell; k / w / planner are overridden per cell.
  core::CtBusOptions base;
  /// Swept values. An empty axis means "just the base value".
  std::vector<int> ks;
  std::vector<double> ws;
  std::vector<core::Planner> planners;
  /// Snapshot to sweep against; 0 = latest, resolved once at launch.
  std::uint64_t snapshot_version = 0;
  /// Queue class for every cell. Sweeps default to the background class so
  /// they yield to interactive requests; pass Priority::kInteractive for a
  /// sweep the user is actively waiting on.
  Priority priority = Priority::kSweep;
};

struct SweepCell {
  int k = 0;
  double w = 0.0;
  core::Planner planner = core::Planner::kEtaPre;
  ServiceResult result;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(PlanningService* service) : service_(service) {}

  /// Submits every (k, w, planner) combination and gathers the results in
  /// submission order. Throws if any cell fails.
  std::vector<SweepCell> Run(const SweepSpec& spec);

 private:
  PlanningService* service_;
};

}  // namespace ctbus::service

#endif  // CTBUS_SERVICE_SCENARIO_RUNNER_H_
