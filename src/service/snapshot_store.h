// Versioned, immutable network snapshots for the planning service.
//
// A snapshot is one (RoadNetwork, TransitNetwork) state of a city, shared
// via shared_ptr by every query planning against it. CommitRoute publishes
// a *new* version by copy-on-write — readers holding older versions are
// never blocked, never invalidated, and keep their networks alive until
// the last in-flight query drops its reference. This is the serving-layer
// counterpart of CtBusPlanner's invalidate-and-rebuild semantics.
//
// Thread-safety: every public method may be called from any thread.
// Reads take a short index lock; CommitRoute additionally serializes
// against other commits (so stacked commits compose) but never holds the
// index lock while copying networks. The store also records each commit's
// lineage (parent version + edge-diff), which DeltaBetween composes into
// the warm-start input of PlanningContext::DerivePrecompute.
//
// Memory governance: each published version's footprint is measured once
// (ApproxBytes of its networks) and the store exposes the resident total.
// ApplyRetention enforces a SnapshotRetentionPolicy — keep-latest-K plus a
// byte budget — pruning oldest-first while never touching the latest
// version or any caller-protected version, and trimming lineage records
// only below the oldest version anyone can still warm-start from, so
// DeltaBetween never silently loses a reachable donor. Pruning changes
// which versions stay resident, never their contents: planning results
// are bit-identical under any policy that leaves the queried versions
// resident.
#ifndef CTBUS_SERVICE_SNAPSHOT_STORE_H_
#define CTBUS_SERVICE_SNAPSHOT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/edge_universe.h"
#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "core/eta.h"
#include "core/planning_context.h"
#include "graph/road_network.h"
#include "graph/transit_network.h"

namespace ctbus::service {

/// One immutable version of a city's networks. `parent_version` is the
/// version CommitRoute built this one from (0 for the seed version), which
/// makes versions a tree; DeltaBetween walks it.
struct NetworkSnapshot {
  std::uint64_t version = 0;
  std::uint64_t parent_version = 0;
  std::shared_ptr<const graph::RoadNetwork> road;
  std::shared_ptr<const graph::TransitNetwork> transit;
  /// ApproxBytes of road + transit, measured once at publish time (the
  /// networks are immutable, so the value never goes stale).
  std::size_t approx_bytes = 0;
};

/// Retention policy over a store's resident versions. Zero means
/// "unlimited" for both knobs; the latest version and caller-protected
/// versions are retained regardless, so a policy can bound memory but can
/// never make the store lose data someone still plans against.
struct SnapshotRetentionPolicy {
  /// Keep at most this many resident versions (0 = no count limit).
  std::size_t keep_latest = 0;
  /// Keep at most this many summed snapshot ApproxBytes (0 = no limit).
  std::size_t max_bytes = 0;
};

using SnapshotPtr = std::shared_ptr<const NetworkSnapshot>;

class SnapshotStore {
 public:
  /// Seeds version 1 with the given networks.
  SnapshotStore(graph::RoadNetwork road, graph::TransitNetwork transit);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// The most recently committed version.
  SnapshotPtr Latest() const CTBUS_EXCLUDES(mu_);

  /// A specific version, or nullptr if it was never published (or pruned).
  SnapshotPtr Get(std::uint64_t version) const CTBUS_EXCLUDES(mu_);

  std::uint64_t latest_version() const CTBUS_EXCLUDES(mu_);
  std::size_t num_versions() const CTBUS_EXCLUDES(mu_);

  /// Resident (not pruned) version ids, ascending. For stress-test
  /// replays and operational introspection; pruned versions held alive by
  /// in-flight queries do not appear.
  std::vector<std::uint64_t> Versions() const CTBUS_EXCLUDES(mu_);

  /// Applies a planned route on top of `base_version` (0 = latest) with
  /// CtBusPlanner::CommitRoute semantics: realize the route's edges in the
  /// transit network, register the stop sequence as a new route, and zero
  /// the demand on covered road edges. `universe` must be the plannable
  /// universe the result was planned against (it maps the result's edge
  /// ids to stop pairs and road edges). Publishes and returns the new
  /// version id. Concurrent commits are serialized (writer lock), so two
  /// commits against "latest" stack instead of clobbering each other;
  /// readers are never blocked by a commit in progress.
  std::uint64_t CommitRoute(const core::PlanResult& result,
                            const core::EdgeUniverse& universe,
                            std::uint64_t base_version = 0)
      CTBUS_EXCLUDES(commit_mu_, mu_);

  /// The version `version` was committed on top of, or 0 for the seed
  /// version (and for versions this store never published).
  std::uint64_t ParentVersion(std::uint64_t version) const
      CTBUS_EXCLUDES(mu_);

  /// The composed edge-diff from `from_version` to `to_version`: the stop
  /// pairs whose transit edges were activated, the stops they touch, and
  /// the road edges whose demand was zeroed, accumulated over every commit
  /// on the parent path from `to_version` back to `from_version`. Returns
  /// nullopt when `from_version` is not an ancestor of `to_version` (the
  /// versions sit on different branches of the commit tree), in which case
  /// a warm start is impossible and callers fall back to a from-scratch
  /// precompute. `from_version == to_version` yields an empty delta.
  ///
  /// Lineage records are tiny and deliberately survive Prune: a cached
  /// precompute of a pruned version can still seed a warm start, because
  /// DerivePrecompute needs only the *new* snapshot's networks plus the
  /// delta, never the donor's networks.
  std::optional<core::SnapshotDelta> DeltaBetween(
      std::uint64_t from_version, std::uint64_t to_version) const
      CTBUS_EXCLUDES(mu_);

  /// Drops all but the `keep_latest` newest versions from the index.
  /// `keep_latest` is clamped to >= 1: the latest version is never pruned,
  /// so Get(latest_version()) and Latest() always agree. In-flight queries
  /// holding dropped snapshots keep them alive. Lineage records (parent
  /// links + deltas) are kept — see DeltaBetween.
  void Prune(std::size_t keep_latest) CTBUS_EXCLUDES(mu_);

  /// What one ApplyRetention pass removed.
  struct RetentionResult {
    std::size_t versions_pruned = 0;
    std::size_t lineage_trimmed = 0;
  };

  /// Enforces `policy` over the resident versions: prunes oldest-first
  /// while more than policy.keep_latest versions are resident (when > 0)
  /// or their summed ApproxBytes exceed policy.max_bytes (when > 0). The
  /// latest version and every version in `protected_versions` are never
  /// pruned — callers pass the versions pinned by queued requests and by
  /// resident precompute-cache entries, so an in-flight query or a
  /// pending warm-start derive can never lose its snapshot. A byte budget
  /// smaller than the unprunable set is therefore satisfied best-effort.
  ///
  /// Lineage is trimmed *conservatively*: only records at or below the
  /// oldest still-relevant version (the minimum over resident and
  /// protected versions) are dropped, so DeltaBetween(donor, v) keeps
  /// working for every donor a caller declared protected — a retention
  /// pass can make a warm start cheaper to decline (fall back to scratch)
  /// but never sever a declared donor's lineage mid-derive.
  RetentionResult ApplyRetention(
      const SnapshotRetentionPolicy& policy,
      const std::vector<std::uint64_t>& protected_versions = {})
      CTBUS_EXCLUDES(mu_);

  /// Summed ApproxBytes of the resident (not pruned) versions. O(1).
  std::size_t ApproxBytes() const CTBUS_EXCLUDES(mu_);

  /// Resident lineage records (for tests and introspection).
  std::size_t num_lineage_records() const CTBUS_EXCLUDES(mu_);

 private:
  /// One commit's worth of lineage: the parent version and the edge-diff
  /// the commit applied to it.
  struct Lineage {
    std::uint64_t parent_version = 0;
    core::SnapshotDelta delta;
  };

  std::uint64_t Publish(graph::RoadNetwork road, graph::TransitNetwork transit,
                        std::uint64_t parent_version,
                        core::SnapshotDelta delta) CTBUS_EXCLUDES(mu_);

  mutable core::Mutex mu_;
  /// Serializes CommitRoute end-to-end. Lock order: commit_mu_ before mu_
  /// (CommitRoute reads the base under mu_, then publishes under mu_,
  /// while holding commit_mu_ throughout); nothing takes commit_mu_ while
  /// holding mu_. Both sit BELOW PlanningService's Shard::mu in the global
  /// order — see PlanningService::ApplyRetention.
  core::Mutex commit_mu_ CTBUS_ACQUIRED_BEFORE(mu_);
  std::uint64_t next_version_ CTBUS_GUARDED_BY(mu_) = 1;
  std::map<std::uint64_t, SnapshotPtr> versions_ CTBUS_GUARDED_BY(mu_);
  /// Keyed by child version.
  std::map<std::uint64_t, Lineage> lineage_ CTBUS_GUARDED_BY(mu_);
  SnapshotPtr latest_ CTBUS_GUARDED_BY(mu_);
  /// Summed approx_bytes of versions_.
  std::size_t resident_bytes_ CTBUS_GUARDED_BY(mu_) = 0;
};

}  // namespace ctbus::service

#endif  // CTBUS_SERVICE_SNAPSHOT_STORE_H_
