// Versioned, immutable network snapshots for the planning service.
//
// A snapshot is one (RoadNetwork, TransitNetwork) state of a city, shared
// via shared_ptr by every query planning against it. CommitRoute publishes
// a *new* version by copy-on-write — readers holding older versions are
// never blocked, never invalidated, and keep their networks alive until
// the last in-flight query drops its reference. This is the serving-layer
// counterpart of CtBusPlanner's invalidate-and-rebuild semantics.
#ifndef CTBUS_SERVICE_SNAPSHOT_STORE_H_
#define CTBUS_SERVICE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/edge_universe.h"
#include "core/eta.h"
#include "graph/road_network.h"
#include "graph/transit_network.h"

namespace ctbus::service {

/// One immutable version of a city's networks.
struct NetworkSnapshot {
  std::uint64_t version = 0;
  std::shared_ptr<const graph::RoadNetwork> road;
  std::shared_ptr<const graph::TransitNetwork> transit;
};

using SnapshotPtr = std::shared_ptr<const NetworkSnapshot>;

class SnapshotStore {
 public:
  /// Seeds version 1 with the given networks.
  SnapshotStore(graph::RoadNetwork road, graph::TransitNetwork transit);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// The most recently committed version.
  SnapshotPtr Latest() const;

  /// A specific version, or nullptr if it was never published (or pruned).
  SnapshotPtr Get(std::uint64_t version) const;

  std::uint64_t latest_version() const;
  std::size_t num_versions() const;

  /// Applies a planned route on top of `base_version` (0 = latest) with
  /// CtBusPlanner::CommitRoute semantics: realize the route's edges in the
  /// transit network, register the stop sequence as a new route, and zero
  /// the demand on covered road edges. `universe` must be the plannable
  /// universe the result was planned against (it maps the result's edge
  /// ids to stop pairs and road edges). Publishes and returns the new
  /// version id. Concurrent commits are serialized (writer lock), so two
  /// commits against "latest" stack instead of clobbering each other;
  /// readers are never blocked by a commit in progress.
  std::uint64_t CommitRoute(const core::PlanResult& result,
                            const core::EdgeUniverse& universe,
                            std::uint64_t base_version = 0);

  /// Drops all but the `keep_latest` newest versions from the index.
  /// In-flight queries holding dropped snapshots keep them alive.
  void Prune(std::size_t keep_latest);

 private:
  std::uint64_t Publish(graph::RoadNetwork road,
                        graph::TransitNetwork transit);

  mutable std::mutex mu_;
  std::mutex commit_mu_;  // serializes CommitRoute end-to-end
  std::uint64_t next_version_ = 1;
  std::map<std::uint64_t, SnapshotPtr> versions_;
  SnapshotPtr latest_;
};

}  // namespace ctbus::service

#endif  // CTBUS_SERVICE_SNAPSHOT_STORE_H_
