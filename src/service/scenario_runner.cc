#include "service/scenario_runner.h"

#include <future>
#include <utility>

namespace ctbus::service {

std::vector<SweepCell> ScenarioRunner::Run(const SweepSpec& spec) {
  const std::vector<int> ks = spec.ks.empty() ? std::vector<int>{spec.base.k}
                                              : spec.ks;
  const std::vector<double> ws =
      spec.ws.empty() ? std::vector<double>{spec.base.w} : spec.ws;
  const std::vector<core::Planner> planners =
      spec.planners.empty()
          ? std::vector<core::Planner>{core::Planner::kEtaPre}
          : spec.planners;

  // Pin one snapshot for the whole sweep.
  const std::uint64_t version = spec.snapshot_version != 0
                                    ? spec.snapshot_version
                                    : service_->LatestVersion(spec.dataset);

  std::vector<SweepCell> cells;
  std::vector<std::future<ServiceResult>> futures;
  for (int k : ks) {
    for (double w : ws) {
      for (core::Planner planner : planners) {
        PlanRequest request;
        request.dataset = spec.dataset;
        request.options = spec.base;
        request.options.k = k;
        request.options.w = w;
        request.planner = planner;
        request.snapshot_version = version;
        request.priority = spec.priority;
        SweepCell cell;
        cell.k = k;
        cell.w = w;
        cell.planner = planner;
        cells.push_back(std::move(cell));
        futures.push_back(service_->Submit(std::move(request)));
      }
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    cells[i].result = futures[i].get();
  }
  return cells;
}

}  // namespace ctbus::service
