// Synthetic transit-network generator: bus routes as stop sequences along
// road shortest paths between hub-biased endpoints, with stops shared across
// routes (transfers). Stands in for the GTFS/shapefile-extracted networks of
// the paper.
#ifndef CTBUS_GEN_TRANSIT_GENERATOR_H_
#define CTBUS_GEN_TRANSIT_GENERATOR_H_

#include <cstdint>

#include "graph/road_network.h"
#include "graph/transit_network.h"

namespace ctbus::gen {

struct TransitOptions {
  int num_routes = 30;
  /// Road edges between consecutive stops along a route.
  int stop_spacing_edges = 3;
  /// Routes are truncated to this many stops.
  int max_stops_per_route = 30;
  /// Number of hub vertices; routes preferentially start/end near hubs,
  /// which yields shared stops and a transfer-rich network.
  int num_hubs = 5;
  /// Probability that a route endpoint is a hub (vs a uniform vertex).
  double hub_bias = 0.6;
  /// Per-route multiplicative jitter applied to road edge lengths when
  /// tracing the route, so different routes between similar endpoints take
  /// different streets.
  double route_jitter = 0.35;
  /// Minimum straight-line endpoint separation as a fraction of the city
  /// bounding-box diagonal; keeps routes long, like real bus lines.
  double min_endpoint_separation = 0.45;
  std::uint64_t seed = 2;
};

/// Generates a transit network over `road`. Deterministic per options.
graph::TransitNetwork GenerateTransit(const graph::RoadNetwork& road,
                                      const TransitOptions& options);

}  // namespace ctbus::gen

#endif  // CTBUS_GEN_TRANSIT_GENERATOR_H_
