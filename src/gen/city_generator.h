// Synthetic road-network generator: a perturbed grid with irregular blocks,
// missing segments, and diagonal arterials. Stands in for the DIMACS road
// networks used by the paper (see DESIGN.md, data substitution): the
// properties the algorithms depend on — planarity, near-uniform low degree,
// metric edge lengths, small spectral norm — are reproduced.
#ifndef CTBUS_GEN_CITY_GENERATOR_H_
#define CTBUS_GEN_CITY_GENERATOR_H_

#include <cstdint>

#include "graph/road_network.h"

namespace ctbus::gen {

struct CityOptions {
  /// Grid dimensions (vertices per row / column).
  int grid_width = 30;
  int grid_height = 30;
  /// Block size in meters (NYC-like blocks are ~80-270 m).
  double block_size = 120.0;
  /// Vertex positions are jittered by up to this fraction of a block.
  double position_jitter = 0.25;
  /// Each grid edge survives with this probability (street gaps, rivers).
  double edge_keep_probability = 0.93;
  /// Probability of adding a diagonal shortcut in a cell (arterials).
  double diagonal_probability = 0.04;
  std::uint64_t seed = 1;
};

/// Generates a connected road network. Determined entirely by `options`
/// (same options => identical network).
graph::RoadNetwork GenerateCity(const CityOptions& options);

}  // namespace ctbus::gen

#endif  // CTBUS_GEN_CITY_GENERATOR_H_
