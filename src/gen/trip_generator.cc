#include "gen/trip_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <optional>
#include <vector>

#include "graph/geo.h"
#include "graph/shortest_path.h"
#include "graph/spatial_grid.h"
#include "linalg/rng.h"

namespace ctbus::gen {

namespace {

// Shared sampling machinery for both entry points. Calls `sink` with the
// shortest-path tree's edge path for every generated trip.
std::int64_t ForEachTrip(
    const graph::RoadNetwork& road, const TripOptions& options,
    const std::function<void(const graph::Path&)>& sink) {
  assert(options.num_trips >= 0);
  assert(options.trips_per_origin >= 1);
  const graph::Graph& g = road.graph();
  if (g.num_vertices() < 2 || options.num_trips == 0) return 0;
  linalg::Rng rng(options.seed);

  std::vector<graph::Point> positions;
  positions.reserve(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) {
    positions.push_back(g.position(v));
  }
  // Cell size ~ hotspot spread keeps nearest-vertex queries cheap.
  const graph::SpatialGrid index(positions,
                                 std::max(50.0, options.hotspot_stddev / 2));

  std::vector<graph::Point> hotspots;
  for (int i = 0; i < options.num_hotspots; ++i) {
    hotspots.push_back(positions[rng.NextIndex(g.num_vertices())]);
  }
  auto sample_vertex = [&]() -> int {
    if (!hotspots.empty() && rng.NextBool(options.hotspot_weight)) {
      const graph::Point& center = hotspots[rng.NextIndex(hotspots.size())];
      const graph::Point p{
          center.x + rng.NextGaussian() * options.hotspot_stddev,
          center.y + rng.NextGaussian() * options.hotspot_stddev};
      return index.Nearest(p);
    }
    return static_cast<int>(rng.NextIndex(g.num_vertices()));
  };

  std::int64_t generated = 0;
  std::int64_t failures = 0;
  // On heavily disconnected inputs most samples fail; bail out rather than
  // spin forever.
  const std::int64_t failure_budget = 10 * options.num_trips + 1000;
  while (generated < options.num_trips && failures < failure_budget) {
    const int origin = sample_vertex();
    const graph::ShortestPathTree tree = graph::Dijkstra(g, origin);
    const int batch = static_cast<int>(
        std::min<std::int64_t>(options.trips_per_origin,
                               options.num_trips - generated));
    for (int i = 0; i < batch; ++i) {
      const int destination = sample_vertex();
      std::optional<graph::Path> path;
      if (destination != origin) {
        path = graph::ExtractPath(tree, origin, destination);
      }
      if (!path.has_value() || path->edges.empty()) {
        ++failures;
        continue;
      }
      sink(*path);
      ++generated;
    }
  }
  return generated;
}

}  // namespace

std::vector<demand::Trajectory> GenerateTrips(const graph::RoadNetwork& road,
                                              const TripOptions& options) {
  std::vector<demand::Trajectory> trajectories;
  trajectories.reserve(options.num_trips);
  double start_time = 0.0;
  ForEachTrip(road, options, [&](const graph::Path& path) {
    auto t = demand::Trajectory::FromVertices(road.graph(), path.vertices,
                                              start_time, options.speed);
    assert(t.has_value());
    trajectories.push_back(std::move(*t));
    start_time += 60.0;  // trips depart a minute apart
  });
  return trajectories;
}

std::int64_t GenerateDemand(const TripOptions& options,
                            graph::RoadNetwork* road) {
  return ForEachTrip(*road, options, [road](const graph::Path& path) {
    for (int e : path.edges) road->AddTripCount(e);
  });
}

}  // namespace ctbus::gen
