#include "gen/datasets.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "gen/city_generator.h"
#include "gen/transit_generator.h"
#include "gen/trip_generator.h"

namespace ctbus::gen {

namespace {

Dataset Assemble(std::string name, const CityOptions& city,
                 const TransitOptions& transit_options,
                 const TripOptions& trip_options) {
  Dataset dataset;
  dataset.name = std::move(name);
  dataset.road = GenerateCity(city);
  dataset.transit = GenerateTransit(dataset.road, transit_options);
  dataset.num_trips = GenerateDemand(trip_options, &dataset.road);
  return dataset;
}

int Scaled(int base, double scale) {
  return std::max(2, static_cast<int>(std::lround(base * scale)));
}

}  // namespace

Dataset MakeMidtown() {
  CityOptions city;
  city.grid_width = 10;
  city.grid_height = 10;
  city.edge_keep_probability = 0.95;
  city.seed = 101;

  TransitOptions transit;
  transit.num_routes = 4;
  transit.stop_spacing_edges = 2;
  transit.max_stops_per_route = 10;
  transit.num_hubs = 2;
  transit.seed = 102;

  TripOptions trips;
  trips.num_trips = 400;
  trips.num_hotspots = 2;
  trips.hotspot_stddev = 200.0;
  trips.seed = 103;

  return Assemble("midtown", city, transit, trips);
}

Dataset MakeChicagoLike(double scale) {
  const double side = std::sqrt(scale);
  CityOptions city;
  city.grid_width = Scaled(76, side);
  city.grid_height = Scaled(56, side);
  city.block_size = 130.0;
  city.edge_keep_probability = 0.92;
  city.diagonal_probability = 0.05;
  city.seed = 201;

  TransitOptions transit;
  transit.num_routes = Scaled(56, scale);
  transit.stop_spacing_edges = 3;
  transit.max_stops_per_route = 42;
  transit.num_hubs = 6;
  transit.hub_bias = 0.55;
  transit.seed = 202;

  TripOptions trips;
  trips.num_trips = Scaled(50000, scale);
  trips.num_hotspots = 6;
  trips.hotspot_stddev = 700.0;
  trips.hotspot_weight = 0.75;
  trips.seed = 203;

  return Assemble("chicago_like", city, transit, trips);
}

Dataset MakeNycLike(double scale) {
  const double side = std::sqrt(scale);
  CityOptions city;
  city.grid_width = Scaled(88, side);
  city.grid_height = Scaled(64, side);
  city.block_size = 110.0;
  city.edge_keep_probability = 0.93;
  city.diagonal_probability = 0.03;
  city.seed = 301;

  TransitOptions transit;
  transit.num_routes = Scaled(96, scale);
  transit.stop_spacing_edges = 3;
  transit.max_stops_per_route = 34;
  transit.num_hubs = 9;
  transit.hub_bias = 0.5;
  transit.seed = 302;

  TripOptions trips;
  trips.num_trips = Scaled(40000, scale);
  trips.num_hotspots = 9;
  trips.hotspot_stddev = 600.0;
  trips.hotspot_weight = 0.7;
  trips.seed = 303;

  return Assemble("nyc_like", city, transit, trips);
}

Dataset MakeBorough(Borough borough, double scale) {
  const double side = std::sqrt(scale);
  CityOptions city;
  TransitOptions transit;
  TripOptions trips;
  std::string name = BoroughName(borough);
  switch (borough) {
    case Borough::kManhattan:
      // Dense, narrow, transit-saturated: many routes on a small grid, so
      // connectivity gains are hard to find (Insight 3).
      city.grid_width = 14;
      city.grid_height = 56;
      city.block_size = 90.0;
      city.seed = 401;
      transit.num_routes = Scaled(26, scale);
      transit.stop_spacing_edges = 2;
      transit.num_hubs = 6;
      transit.seed = 402;
      trips.num_trips = Scaled(16000, scale);
      trips.num_hotspots = 5;
      trips.seed = 403;
      break;
    case Borough::kQueens:
      // Sprawling with sparse coverage.
      city.grid_width = Scaled(52, side);
      city.grid_height = Scaled(40, side);
      city.block_size = 150.0;
      city.seed = 411;
      transit.num_routes = Scaled(22, scale);
      transit.stop_spacing_edges = 4;
      transit.num_hubs = 4;
      transit.hub_bias = 0.5;
      transit.seed = 412;
      trips.num_trips = Scaled(14000, scale);
      trips.num_hotspots = 6;
      trips.hotspot_stddev = 900.0;
      trips.seed = 413;
      break;
    case Borough::kBrooklyn:
      city.grid_width = Scaled(44, side);
      city.grid_height = Scaled(38, side);
      city.block_size = 120.0;
      city.seed = 421;
      transit.num_routes = Scaled(24, scale);
      transit.stop_spacing_edges = 3;
      transit.num_hubs = 5;
      transit.seed = 422;
      trips.num_trips = Scaled(15000, scale);
      trips.num_hotspots = 5;
      trips.seed = 423;
      break;
    case Borough::kStatenIsland:
      // Small, bus-dependent, few routes.
      city.grid_width = Scaled(30, side);
      city.grid_height = Scaled(26, side);
      city.block_size = 170.0;
      city.edge_keep_probability = 0.90;
      city.seed = 431;
      transit.num_routes = Scaled(14, scale);
      transit.stop_spacing_edges = 3;
      transit.num_hubs = 3;
      transit.seed = 432;
      trips.num_trips = Scaled(8000, scale);
      trips.num_hotspots = 3;
      trips.seed = 433;
      break;
    case Borough::kBronx:
      // North-south corridors, weak east-west links: route planning should
      // find high-transfer-saving circles (Insight 3).
      city.grid_width = Scaled(34, side);
      city.grid_height = Scaled(30, side);
      city.block_size = 130.0;
      city.edge_keep_probability = 0.90;
      city.seed = 441;
      transit.num_routes = Scaled(18, scale);
      transit.stop_spacing_edges = 3;
      transit.num_hubs = 3;
      transit.hub_bias = 0.75;
      transit.seed = 442;
      trips.num_trips = Scaled(10000, scale);
      trips.num_hotspots = 4;
      trips.seed = 443;
      break;
  }
  return Assemble(std::move(name), city, transit, trips);
}

std::vector<Dataset> AllBoroughs(double scale) {
  std::vector<Dataset> boroughs;
  boroughs.push_back(MakeBorough(Borough::kManhattan, scale));
  boroughs.push_back(MakeBorough(Borough::kQueens, scale));
  boroughs.push_back(MakeBorough(Borough::kBrooklyn, scale));
  boroughs.push_back(MakeBorough(Borough::kStatenIsland, scale));
  boroughs.push_back(MakeBorough(Borough::kBronx, scale));
  return boroughs;
}

std::string BoroughName(Borough borough) {
  switch (borough) {
    case Borough::kManhattan:
      return "Manhattan";
    case Borough::kQueens:
      return "Queens";
    case Borough::kBrooklyn:
      return "Brooklyn";
    case Borough::kStatenIsland:
      return "Staten Island";
    case Borough::kBronx:
      return "Bronx";
  }
  return "unknown";
}

namespace {

// Single source of truth for the preset registry: DatasetNames,
// HasDataset, and MakeDatasetByName all read this table.
struct PresetEntry {
  const char* name;
  Dataset (*make)(double scale);
};

constexpr PresetEntry kPresets[] = {
    {"midtown", [](double) { return MakeMidtown(); }},
    {"chicago", [](double scale) { return MakeChicagoLike(scale); }},
    {"nyc", [](double scale) { return MakeNycLike(scale); }},
    {"manhattan",
     [](double scale) { return MakeBorough(Borough::kManhattan, scale); }},
    {"queens",
     [](double scale) { return MakeBorough(Borough::kQueens, scale); }},
    {"brooklyn",
     [](double scale) { return MakeBorough(Borough::kBrooklyn, scale); }},
    {"staten_island",
     [](double scale) { return MakeBorough(Borough::kStatenIsland, scale); }},
    {"bronx",
     [](double scale) { return MakeBorough(Borough::kBronx, scale); }},
};

}  // namespace

std::vector<std::string> DatasetNames() {
  std::vector<std::string> names;
  names.reserve(std::size(kPresets));
  for (const PresetEntry& preset : kPresets) names.push_back(preset.name);
  return names;
}

bool HasDataset(const std::string& name) {
  for (const PresetEntry& preset : kPresets) {
    if (name == preset.name) return true;
  }
  return false;
}

Dataset MakeDatasetByName(const std::string& name, double scale) {
  for (const PresetEntry& preset : kPresets) {
    if (name == preset.name) return preset.make(scale);
  }
  throw std::invalid_argument("unknown dataset preset: " + name);
}

}  // namespace ctbus::gen
