// Canned dataset presets mirroring the paper's evaluation cities (Table 5)
// at CI-friendly scale. Every preset is deterministic and carries the demand
// already aggregated onto the road network.
//
// Scale note (see DESIGN.md): the paper's NYC has 264k road vertices and
// 12.3k stops; the presets default to roughly 1/20 of that so the entire
// bench suite reruns in minutes. Pass `scale` > 1 (or set the CTBUS_SCALE
// environment variable in the benches) to grow toward paper scale.
#ifndef CTBUS_GEN_DATASETS_H_
#define CTBUS_GEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/road_network.h"
#include "graph/transit_network.h"

namespace ctbus::gen {

/// A fully assembled evaluation dataset: road network with aggregated
/// demand, transit network, and bookkeeping for Table 5.
struct Dataset {
  std::string name;
  graph::RoadNetwork road;
  graph::TransitNetwork transit;
  /// Number of trips aggregated into the road demand (|D| in Table 5).
  std::int64_t num_trips = 0;
};

/// Tiny fixture (~100 road vertices, 4 routes) for unit tests and the
/// quickstart example. Finishes any algorithm in milliseconds.
Dataset MakeMidtown();

/// Chicago-like preset: compact, lakeside-biased route structure.
Dataset MakeChicagoLike(double scale = 1.0);

/// NYC-like preset: larger, denser, more routes.
Dataset MakeNycLike(double scale = 1.0);

/// The five NYC boroughs of Table 6, as independent sub-city presets with
/// distinct densities and route counts.
enum class Borough {
  kManhattan,
  kQueens,
  kBrooklyn,
  kStatenIsland,
  kBronx,
};

Dataset MakeBorough(Borough borough, double scale = 1.0);

/// All five boroughs in Table 6 order.
std::vector<Dataset> AllBoroughs(double scale = 1.0);

/// Human-readable name ("Manhattan", ...).
std::string BoroughName(Borough borough);

/// Registry of every preset by name, for request-driven construction (the
/// planning service resolves PlanRequest::dataset through this).
/// Names: "midtown", "chicago", "nyc", "manhattan", "queens", "brooklyn",
/// "staten_island", "bronx".
std::vector<std::string> DatasetNames();

/// True if `name` is a registry name.
bool HasDataset(const std::string& name);

/// Builds the named preset (throws std::invalid_argument for an unknown
/// name). `scale` is ignored by "midtown", which has a fixed size.
Dataset MakeDatasetByName(const std::string& name, double scale = 1.0);

}  // namespace ctbus::gen

#endif  // CTBUS_GEN_DATASETS_H_
