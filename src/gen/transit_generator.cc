#include "gen/transit_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/shortest_path.h"
#include "linalg/rng.h"

namespace ctbus::gen {

namespace {

// Shortest path under per-route jittered weights, so routes diversify.
std::optional<graph::Path> JitteredPath(const graph::Graph& g, int source,
                                        int target,
                                        const std::vector<double>& jitter) {
  // Local Dijkstra with multiplied weights (cannot reuse graph::Dijkstra
  // because the weights differ per route).
  const int n = g.num_vertices();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<int> parent_vertex(n, -1);
  std::vector<int> parent_edge(n, -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    if (v == target) break;
    for (const auto& entry : g.Neighbors(v)) {
      const double w = g.edge(entry.edge).length * jitter[entry.edge];
      if (d + w < dist[entry.vertex]) {
        dist[entry.vertex] = d + w;
        parent_vertex[entry.vertex] = v;
        parent_edge[entry.vertex] = entry.edge;
        heap.push({d + w, entry.vertex});
      }
    }
  }
  if (dist[target] == std::numeric_limits<double>::infinity()) {
    return std::nullopt;
  }
  graph::Path path;
  int v = target;
  while (v != source) {
    path.vertices.push_back(v);
    path.edges.push_back(parent_edge[v]);
    v = parent_vertex[v];
  }
  path.vertices.push_back(source);
  std::reverse(path.vertices.begin(), path.vertices.end());
  std::reverse(path.edges.begin(), path.edges.end());
  for (int e : path.edges) path.length += g.edge(e).length;
  return path;
}

}  // namespace

graph::TransitNetwork GenerateTransit(const graph::RoadNetwork& road,
                                      const TransitOptions& options) {
  assert(options.num_routes >= 1);
  assert(options.stop_spacing_edges >= 1);
  assert(options.max_stops_per_route >= 2);
  const graph::Graph& g = road.graph();
  linalg::Rng rng(options.seed);

  // Hubs: random road vertices.
  std::vector<int> hubs;
  for (int i = 0; i < options.num_hubs; ++i) {
    hubs.push_back(static_cast<int>(rng.NextIndex(g.num_vertices())));
  }
  auto sample_endpoint = [&]() {
    if (!hubs.empty() && rng.NextBool(options.hub_bias)) {
      return hubs[rng.NextIndex(hubs.size())];
    }
    return static_cast<int>(rng.NextIndex(g.num_vertices()));
  };

  // City diagonal, for the endpoint-separation rule.
  double min_x = g.position(0).x, max_x = min_x;
  double min_y = g.position(0).y, max_y = min_y;
  for (int v = 1; v < g.num_vertices(); ++v) {
    min_x = std::min(min_x, g.position(v).x);
    max_x = std::max(max_x, g.position(v).x);
    min_y = std::min(min_y, g.position(v).y);
    max_y = std::max(max_y, g.position(v).y);
  }
  const double min_separation =
      options.min_endpoint_separation *
      std::hypot(max_x - min_x, max_y - min_y);

  graph::TransitNetwork transit;
  std::unordered_map<int, int> stop_of_vertex;  // road vertex -> stop id
  auto stop_at = [&](int road_vertex) {
    const auto it = stop_of_vertex.find(road_vertex);
    if (it != stop_of_vertex.end()) return it->second;
    const int id = transit.AddStop(road_vertex, g.position(road_vertex));
    stop_of_vertex.emplace(road_vertex, id);
    return id;
  };

  std::vector<double> jitter(g.num_edges(), 1.0);
  int made = 0;
  int attempts = 0;
  while (made < options.num_routes && attempts < options.num_routes * 20) {
    ++attempts;
    const int source = sample_endpoint();
    const int target = sample_endpoint();
    if (source == target) continue;
    if (graph::Distance(g.position(source), g.position(target)) <
        min_separation) {
      continue;
    }
    for (double& j : jitter) {
      j = rng.NextDouble(1.0, 1.0 + options.route_jitter);
    }
    const auto path = JitteredPath(g, source, target, jitter);
    if (!path.has_value() ||
        static_cast<int>(path->edges.size()) < 2 * options.stop_spacing_edges) {
      continue;
    }

    // Stops every stop_spacing_edges road edges, always including both ends,
    // truncated to max_stops_per_route.
    std::vector<int> stop_vertices;
    std::vector<std::vector<int>> leg_road_edges;
    std::vector<int> current_leg;
    stop_vertices.push_back(path->vertices.front());
    for (std::size_t i = 0; i < path->edges.size(); ++i) {
      current_leg.push_back(path->edges[i]);
      const bool at_spacing =
          static_cast<int>(current_leg.size()) >= options.stop_spacing_edges;
      const bool at_end = i + 1 == path->edges.size();
      if (at_spacing || at_end) {
        stop_vertices.push_back(path->vertices[i + 1]);
        leg_road_edges.push_back(current_leg);
        current_leg.clear();
        if (static_cast<int>(stop_vertices.size()) >=
            options.max_stops_per_route) {
          break;
        }
      }
    }
    if (stop_vertices.size() < 2) continue;

    // Materialize stops and edges; skip degenerate legs whose endpoints
    // collapse to the same stop.
    std::vector<int> stops;
    stops.push_back(stop_at(stop_vertices[0]));
    for (std::size_t i = 1; i < stop_vertices.size(); ++i) {
      const int s = stop_at(stop_vertices[i]);
      if (s == stops.back()) continue;
      double length = 0.0;
      for (int e : leg_road_edges[i - 1]) length += g.edge(e).length;
      transit.AddEdge(stops.back(), s, length, leg_road_edges[i - 1]);
      stops.push_back(s);
    }
    if (stops.size() < 2) continue;
    transit.AddRoute(stops);
    ++made;
  }
  return transit;
}

}  // namespace ctbus::gen
