#include "gen/city_generator.h"

#include <cassert>
#include <utility>
#include <vector>

#include "graph/geo.h"
#include "graph/graph.h"
#include "graph/union_find.h"
#include "linalg/rng.h"

namespace ctbus::gen {

namespace {

int VertexAt(int x, int y, int width) { return y * width + x; }

}  // namespace

graph::RoadNetwork GenerateCity(const CityOptions& options) {
  assert(options.grid_width >= 2 && options.grid_height >= 2);
  assert(options.block_size > 0.0);
  linalg::Rng rng(options.seed);

  graph::Graph g;
  const double jitter = options.position_jitter * options.block_size;
  for (int y = 0; y < options.grid_height; ++y) {
    for (int x = 0; x < options.grid_width; ++x) {
      g.AddVertex({x * options.block_size + rng.NextDouble(-jitter, jitter),
                   y * options.block_size + rng.NextDouble(-jitter, jitter)});
    }
  }

  auto edge_length = [&g](int u, int v) {
    return graph::Distance(g.position(u), g.position(v));
  };

  // Grid edges, each kept with the configured probability. Dropped edges are
  // remembered so connectivity can be repaired afterwards.
  std::vector<std::pair<int, int>> dropped;
  for (int y = 0; y < options.grid_height; ++y) {
    for (int x = 0; x < options.grid_width; ++x) {
      const int v = VertexAt(x, y, options.grid_width);
      if (x + 1 < options.grid_width) {
        const int right = VertexAt(x + 1, y, options.grid_width);
        if (rng.NextBool(options.edge_keep_probability)) {
          g.AddEdge(v, right, edge_length(v, right));
        } else {
          dropped.emplace_back(v, right);
        }
      }
      if (y + 1 < options.grid_height) {
        const int up = VertexAt(x, y + 1, options.grid_width);
        if (rng.NextBool(options.edge_keep_probability)) {
          g.AddEdge(v, up, edge_length(v, up));
        } else {
          dropped.emplace_back(v, up);
        }
      }
      // Diagonal arterials (one orientation per cell, chosen at random).
      if (x + 1 < options.grid_width && y + 1 < options.grid_height &&
          rng.NextBool(options.diagonal_probability)) {
        const int a = rng.NextBool(0.5) ? v : VertexAt(x + 1, y, options.grid_width);
        const int b = rng.NextBool(0.5) == (a == v)
                          ? VertexAt(x + 1, y + 1, options.grid_width)
                          : VertexAt(x, y + 1, options.grid_width);
        // Guard against picking the same vertex twice via the xor trick.
        if (a != b) g.AddEdge(a, b, edge_length(a, b));
      }
    }
  }

  // Repair connectivity by re-adding dropped grid edges that bridge
  // components (in random order so repairs do not bias one corner).
  graph::UnionFind uf(g.num_vertices());
  for (int e = 0; e < g.num_edges(); ++e) {
    uf.Union(g.edge(e).u, g.edge(e).v);
  }
  for (std::size_t i = dropped.size(); i > 1; --i) {
    std::swap(dropped[i - 1], dropped[rng.NextIndex(i)]);
  }
  for (const auto& [u, v] : dropped) {
    if (uf.num_sets() == 1) break;
    if (!uf.Connected(u, v)) {
      g.AddEdge(u, v, edge_length(u, v));
      uf.Union(u, v);
    }
  }
  assert(g.IsConnected());
  return graph::RoadNetwork(std::move(g));
}

}  // namespace ctbus::gen
