// Synthetic commuting-trip generator: a gravity-style demand model with
// hotspot zones. Each trip's trajectory is its shortest road path, which is
// exactly how the paper converts raw taxi trip records (pickup/drop-off
// pairs) into network-constrained trajectories.
//
// Trips are generated origin-batched: one Dijkstra tree per sampled origin
// serves many destinations, so millions of trips aggregate in seconds.
#ifndef CTBUS_GEN_TRIP_GENERATOR_H_
#define CTBUS_GEN_TRIP_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "demand/trajectory.h"
#include "graph/road_network.h"

namespace ctbus::gen {

struct TripOptions {
  int num_trips = 10000;
  /// Trips sharing one sampled origin (one Dijkstra serves them all).
  int trips_per_origin = 20;
  /// Number of hotspot centers (business districts, stations...).
  int num_hotspots = 6;
  /// Gaussian spread of endpoints around a hotspot, meters.
  double hotspot_stddev = 500.0;
  /// Probability that a trip endpoint is hotspot-based (vs uniform).
  double hotspot_weight = 0.7;
  /// Travel speed used for trajectory timestamps (m/s).
  double speed = 8.0;
  std::uint64_t seed = 3;
};

/// Generates trips and returns their trajectories (use for small datasets /
/// tests; memory is O(total path length)).
std::vector<demand::Trajectory> GenerateTrips(const graph::RoadNetwork& road,
                                              const TripOptions& options);

/// Generates trips and folds them directly into `road`'s trip counts
/// without materializing trajectories. Returns the number of trips
/// aggregated (trips whose endpoints coincide are skipped).
std::int64_t GenerateDemand(const TripOptions& options,
                            graph::RoadNetwork* road);

}  // namespace ctbus::gen

#endif  // CTBUS_GEN_TRIP_GENERATOR_H_
